#include <gtest/gtest.h>

#include "src/pers/os2/os2.h"
#include "src/pers/os2/pm.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace pers {
namespace {

class Os2Test : public mk::KernelTest {
 protected:
  Os2Test() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<svc::BlockCache>(kernel_, store_.get(), 1024);
    hpfs_ = std::make_unique<svc::HpfsFs>(kernel_, cache_.get(), 65536);
    fs_task_ = kernel_.CreateTask("file-server");
    fs_ = std::make_unique<svc::FileServer>(kernel_, fs_task_);
    EXPECT_EQ(fs_->AddMount("/", hpfs_.get()), base::Status::kOk);
    os2_task_ = kernel_.CreateTask("os2-server");
    os2_ = std::make_unique<Os2Server>(kernel_, os2_task_);
    kernel_.CreateThread(fs_task_, "mkfs",
                         [this](mk::Env& env) { ASSERT_EQ(hpfs_->Format(env), base::Status::kOk); });
  }

  void Shutdown(mk::Env& env, Os2Process& proc) {
    fs_->Stop();
    os2_->Stop();
    (void)proc.DosExit(env, 0);
    svc::FsClient unblock(fs_->GrantTo(*proc.task()));
    (void)unblock.Sync(env);
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::HpfsFs> hpfs_;
  mk::Task* fs_task_;
  std::unique_ptr<svc::FileServer> fs_;
  mk::Task* os2_task_;
  std::unique_ptr<Os2Server> os2_;
};

TEST_F(Os2Test, DosFileApiRoundTrip) {
  Os2Process proc(kernel_, *os2_, *fs_, "works");
  kernel_.CreateThread(proc.task(), "main", [&](mk::Env& env) {
    auto h = proc.DosOpen(env, "/REPORT.DOC", svc::kFsCreate | svc::kFsWrite);
    ASSERT_TRUE(h.ok());
    const char text[] = "quarterly numbers";
    ASSERT_TRUE(proc.DosWrite(env, *h, 0, text, sizeof(text)).ok());
    char buf[64] = {};
    auto got = proc.DosRead(env, *h, 0, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_STREQ(buf, text);
    ASSERT_EQ(proc.DosClose(env, *h), base::Status::kOk);
    // OS/2 names are case-insensitive even on a case-preserving store.
    EXPECT_TRUE(proc.DosOpen(env, "/report.doc", 0).ok());
    Shutdown(env, proc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(proc.api_calls(), 4u);
}

TEST_F(Os2Test, DosAllocMemIsEagerAndByteSized) {
  Os2Process proc(kernel_, *os2_, *fs_, "memhog");
  kernel_.CreateThread(proc.task(), "main", [&](mk::Env& env) {
    const uint64_t frames_before = machine_.mem().frames_allocated();
    auto mem = proc.DosAllocMem(env, 10'000, kPagCommit);  // 3 pages worth
    ASSERT_TRUE(mem.ok());
    // Eager commitment: frames exist before any touch.
    EXPECT_EQ(machine_.mem().frames_allocated() - frames_before, 3u);
    // Byte-granular size is retained by the OS/2 layer (the microkernel
    // cannot do this — it rounds to pages and forgets).
    auto size = proc.memory().QueryMemSize(*mem);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, 10'000u);
    // Suballocation within the object.
    auto a = proc.memory().SubAlloc(env, *mem, 100);
    auto b = proc.memory().SubAlloc(env, *mem, 200);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NE(*a, *b);
    ASSERT_EQ(proc.memory().SubFree(env, *mem, *a), base::Status::kOk);
    ASSERT_EQ(proc.DosFreeMem(env, *mem), base::Status::kOk);
    EXPECT_EQ(proc.memory().committed_pages(), 0u);
    Shutdown(env, proc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(Os2Test, DoubleMemoryManagementCostsMoreThanRawKernel) {
  Os2Process proc(kernel_, *os2_, *fs_, "foot");
  kernel_.CreateThread(proc.task(), "main", [&](mk::Env& env) {
    // 20 OS/2 allocations of 5000 bytes, committed: OS/2 semantics.
    const uint64_t frames_before = machine_.mem().frames_allocated();
    std::vector<hw::VirtAddr> ptrs;
    for (int i = 0; i < 20; ++i) {
      auto mem = proc.DosAllocMem(env, 5000, kPagCommit);
      ASSERT_TRUE(mem.ok());
      ptrs.push_back(*mem);
    }
    const uint64_t os2_frames = machine_.mem().frames_allocated() - frames_before;
    // The same program on the raw microkernel (lazy): allocations consume no
    // frames until touched, and only touched pages materialize.
    mk::Task* raw = kernel_.CreateTask("raw");
    const uint64_t raw_before = machine_.mem().frames_allocated();
    for (int i = 0; i < 20; ++i) {
      auto addr = kernel_.VmAllocate(*raw, 5000);
      ASSERT_TRUE(addr.ok());
      // Program touches only the first page of each object.
      ASSERT_EQ(kernel_.UserTouch(*raw, *addr, 64, true), base::Status::kOk);
    }
    const uint64_t raw_frames = machine_.mem().frames_allocated() - raw_before;
    EXPECT_EQ(os2_frames, 40u);  // 2 pages per 5000-byte object, all committed
    EXPECT_EQ(raw_frames, 20u);  // one touched page each
    EXPECT_GT(proc.memory().metadata_bytes(), 0u);
    Shutdown(env, proc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(Os2Test, SystemSemaphoresAcrossProcesses) {
  Os2Process p1(kernel_, *os2_, *fs_, "holder");
  Os2Process p2(kernel_, *os2_, *fs_, "waiter");
  std::vector<int> order;
  uint32_t sem_id = 0;
  kernel_.CreateThread(p1.task(), "main", [&](mk::Env& env) {
    auto sem = p1.DosCreateSem(env, "\\SEM32\\PRINTER");
    ASSERT_TRUE(sem.ok());
    sem_id = *sem;
    ASSERT_EQ(p1.DosRequestSem(env, sem_id), base::Status::kOk);
    order.push_back(1);
    env.Yield();
    env.Yield();
    order.push_back(2);
    ASSERT_EQ(p1.DosReleaseSem(env, sem_id), base::Status::kOk);
  });
  kernel_.CreateThread(p2.task(), "main", [&](mk::Env& env) {
    while (sem_id == 0) {
      env.Yield();
    }
    ASSERT_EQ(p2.DosRequestSem(env, sem_id), base::Status::kOk);
    order.push_back(3);
    ASSERT_EQ(p2.DosReleaseSem(env, sem_id), base::Status::kOk);
    Shutdown(env, p2);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

class PmTest : public mk::KernelTest {
 protected:
  PmTest() {
    fb_dev_ = new hw::Framebuffer("fb0", &machine_, 640, 480);
    machine_.AddDevice(std::unique_ptr<hw::Device>(fb_dev_));
    fb_ = std::make_unique<drv::FbDriver>(kernel_, fb_dev_);
    desktop_ = std::make_unique<PmDesktop>(kernel_, fb_.get());
  }

  hw::Framebuffer* fb_dev_;
  std::unique_ptr<drv::FbDriver> fb_;
  std::unique_ptr<PmDesktop> desktop_;
};

TEST_F(PmTest, DrawWritesFramebufferDirectly) {
  mk::Task* app = kernel_.CreateTask("klondike");
  auto session_r = desktop_->Attach(*app);
  ASSERT_TRUE(session_r.ok());
  PmSession& session = **session_r;
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    auto hwnd = session.CreateWindow(env, "Game", 100, 50, 200, 100);
    ASSERT_TRUE(hwnd.ok());
    ASSERT_EQ(session.FillRect(env, *hwnd, 10, 20, 50, 2, 0x5a), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  // Pixel (100+10, 50+20) must carry the color — straight into VRAM.
  const hw::PhysAddr pixel = fb_dev_->vram_base() + (50 + 20) * 640 + (100 + 10);
  EXPECT_EQ(machine_.mem().ReadU8(pixel), 0x5a);
  EXPECT_EQ(machine_.mem().ReadU8(pixel + 49), 0x5a);
  EXPECT_NE(machine_.mem().ReadU8(pixel + 50), 0x5a);
  EXPECT_EQ(session.draw_calls(), 1u);
}

TEST_F(PmTest, CrossProcessWindowMessages) {
  mk::Task* a = kernel_.CreateTask("app-a");
  mk::Task* b = kernel_.CreateTask("app-b");
  auto sa = desktop_->Attach(*a);
  auto sb = desktop_->Attach(*b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  Hwnd wa = 0;
  int volleys = 0;
  kernel_.CreateThread(a, "main", [&](mk::Env& env) {
    auto hwnd = (*sa)->CreateWindow(env, "A", 0, 0, 100, 100);
    ASSERT_TRUE(hwnd.ok());
    wa = *hwnd;
    for (int i = 0; i < 5; ++i) {
      auto msg = (*sa)->GetMsg(env, wa);  // blocks until B posts
      ASSERT_TRUE(msg.ok());
      EXPECT_EQ(msg->msg, 0x100u + i);
      ++volleys;
    }
  });
  kernel_.CreateThread(b, "main", [&](mk::Env& env) {
    while (wa == 0) {
      env.Yield();
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ((*sb)->PostMsg(env, wa, 0x100 + i, 0, 0), base::Status::kOk);
      env.Yield();
    }
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(volleys, 5);
  EXPECT_EQ(desktop_->messages_posted(), 5u);
}

TEST_F(PmTest, WindowSwitchRepaints) {
  mk::Task* app = kernel_.CreateTask("swp32");
  auto session = desktop_->Attach(*app);
  ASSERT_TRUE(session.ok());
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    auto w1 = (*session)->CreateWindow(env, "one", 0, 0, 64, 64);
    auto w2 = (*session)->CreateWindow(env, "two", 32, 32, 64, 64);
    ASSERT_TRUE(w1.ok());
    ASSERT_TRUE(w2.ok());
    ASSERT_EQ((*session)->SwitchTo(env, *w1), base::Status::kOk);
    ASSERT_EQ((*session)->SwitchTo(env, *w2), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(desktop_->window_switches(), 2u);
}

}  // namespace
}  // namespace pers
