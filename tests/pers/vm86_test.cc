// Instruction-level tests of the Vm86 engine: each opcode's architectural
// effect, interpreter/translator equivalence on the same programs, and the
// translation cache.
#include <gtest/gtest.h>

#include "src/pers/mvm/vm86.h"
#include "tests/mk/kernel_test_fixture.h"

namespace pers {
namespace {

class Vm86Test : public mk::KernelTest {
 protected:
  Vm86Test() {
    task_ = kernel_.CreateTask("dos");
    vm_ = std::make_unique<Vm86>(kernel_, task_, [this](mk::Env&, uint8_t vector,
                                                        Vm86State& state) {
      last_int_ = vector;
      ++int_count_;
    });
  }

  // Runs `code` with the chosen engine and returns the final state.
  Vm86State Run(const Vm86Assembler& as, bool translated) {
    Vm86State out;
    kernel_.CreateThread(task_, "run", [&](mk::Env& env) {
      ASSERT_EQ(vm_->LoadProgram(env, as.code()), base::Status::kOk);
      auto n = translated ? vm_->RunTranslated(env, 100000) : vm_->RunInterpreted(env, 100000);
      ASSERT_TRUE(n.ok());
      out = vm_->state();
    });
    EXPECT_EQ(kernel_.Run(), 0u);
    return out;
  }

  mk::Task* task_;
  std::unique_ptr<Vm86> vm_;
  uint8_t last_int_ = 0;
  int int_count_ = 0;
};

TEST_F(Vm86Test, ArithmeticAndFlags) {
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kAx, 10)
      .MovImm(Vm86Reg::kBx, 3)
      .Sub(Vm86Reg::kAx, Vm86Reg::kBx)  // ax = 7, zf = 0
      .AddImm(Vm86Reg::kAx, 100)        // ax = 107
      .MovReg(Vm86Reg::kCx, Vm86Reg::kAx)
      .Cmp(Vm86Reg::kCx, Vm86Reg::kAx)  // zf = 1
      .Hlt();
  const Vm86State s = Run(as, false);
  EXPECT_EQ(s.reg(Vm86Reg::kAx), 107);
  EXPECT_EQ(s.reg(Vm86Reg::kCx), 107);
  EXPECT_TRUE(s.zf);
  EXPECT_TRUE(s.halted);
}

TEST_F(Vm86Test, BranchesAndLoop) {
  // Count down CX from 5, incrementing BX each time.
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kCx, 5).MovImm(Vm86Reg::kBx, 0);
  const uint16_t top = as.here();
  as.Inc(Vm86Reg::kBx).Loop(top).Hlt();
  const Vm86State s = Run(as, false);
  EXPECT_EQ(s.reg(Vm86Reg::kBx), 5);
  EXPECT_EQ(s.reg(Vm86Reg::kCx), 0);
}

TEST_F(Vm86Test, ConditionalJumpsTakenAndNotTaken) {
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kAx, 1)
      .MovImm(Vm86Reg::kBx, 1)
      .Cmp(Vm86Reg::kAx, Vm86Reg::kBx);  // zf=1
  // jz over a poison instruction.
  const uint16_t jz_at = as.here();
  (void)jz_at;
  as.Jz(static_cast<uint16_t>(as.here() + 3 + 4));  // skip the MovImm below
  as.MovImm(Vm86Reg::kDx, 0xdead);
  as.Hlt();
  const Vm86State s = Run(as, false);
  EXPECT_NE(s.reg(Vm86Reg::kDx), 0xdead);
}

TEST_F(Vm86Test, MemoryLoadStoreDirectAndIndexed) {
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kAx, 0xbeef)
      .Store(0x400, Vm86Reg::kAx)
      .Load(Vm86Reg::kBx, 0x400)
      .MovImm(Vm86Reg::kSi, 0x400)
      .LoadIdx(Vm86Reg::kCx)  // cx = [si]
      .MovImm(Vm86Reg::kDi, 0x500)
      .StoreIdx(Vm86Reg::kCx)  // [di] = cx
      .Load(Vm86Reg::kDx, 0x500)
      .Hlt();
  const Vm86State s = Run(as, false);
  EXPECT_EQ(s.reg(Vm86Reg::kBx), 0xbeef);
  EXPECT_EQ(s.reg(Vm86Reg::kCx), 0xbeef);
  EXPECT_EQ(s.reg(Vm86Reg::kDx), 0xbeef);
}

TEST_F(Vm86Test, SoftwareInterruptReachesHandler) {
  Vm86Assembler as;
  as.Int(0x42).Hlt();
  Run(as, false);
  EXPECT_EQ(last_int_, 0x42);
  EXPECT_EQ(int_count_, 1);
}

TEST_F(Vm86Test, IllegalOpcodeStopsExecution) {
  Vm86Assembler as;
  as.Bytes({0x7f});  // not a valid opcode
  kernel_.CreateThread(task_, "run", [&](mk::Env& env) {
    ASSERT_EQ(vm_->LoadProgram(env, as.code()), base::Status::kOk);
    EXPECT_EQ(vm_->RunInterpreted(env, 100).status(), base::Status::kNotSupported);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(Vm86Test, TranslatorMatchesInterpreterOnMixedProgram) {
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kCx, 20).MovImm(Vm86Reg::kBx, 0).MovImm(Vm86Reg::kSi, 0x600);
  const uint16_t top = as.here();
  as.Add(Vm86Reg::kBx, Vm86Reg::kCx)
      .StoreIdx(Vm86Reg::kBx)  // uses DI=0; harmless
      .Loop(top)
      .Store(0x700, Vm86Reg::kBx)
      .Hlt();
  const Vm86State interp = Run(as, false);
  // Fresh VM for the translated run.
  vm_ = std::make_unique<Vm86>(kernel_, task_, [](mk::Env&, uint8_t, Vm86State&) {});
  const Vm86State xlate = Run(as, true);
  EXPECT_EQ(interp.reg(Vm86Reg::kBx), xlate.reg(Vm86Reg::kBx));
  EXPECT_EQ(interp.reg(Vm86Reg::kCx), xlate.reg(Vm86Reg::kCx));
  EXPECT_EQ(interp.ip, xlate.ip);
  EXPECT_GE(vm_->blocks_translated(), 2u);
  EXPECT_GT(vm_->translation_cache_hits(), 15u) << "hot loop must hit the cache";
}

}  // namespace
}  // namespace pers
