// mmap through the UNIX personality: MAP_SHARED maps the file server's
// exported memory object directly, MAP_PRIVATE maps a COW shadow over it,
// Msync publishes mapped stores to the file, Fork hands mappings down, and
// the client-side FS cache stays coherent with mapped views.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/pers/unixp/unix.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace pers {
namespace {

class UnixMmapTest : public mk::KernelTest {
 protected:
  UnixMmapTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<svc::BlockCache>(kernel_, store_.get(), 1024);
    jfs_ = std::make_unique<svc::JfsFs>(kernel_, cache_.get(), 65536);
    fs_task_ = kernel_.CreateTask("file-server");
    fs_ = std::make_unique<svc::FileServer>(kernel_, fs_task_);
    fs_->EnableMapping();
    EXPECT_EQ(fs_->AddMount("/", jfs_.get()), base::Status::kOk);
    kernel_.CreateThread(fs_task_, "mkfs",
                         [this](mk::Env& env) { ASSERT_EQ(jfs_->Format(env), base::Status::kOk); });
  }

  void StopFs(mk::Env& env, mk::Task& any_client_task) {
    fs_->Stop();
    svc::FsClient unblock(fs_->GrantTo(any_client_task));
    (void)unblock.Sync(env);
  }

  static uint8_t PatternByte(uint64_t i) { return static_cast<uint8_t>(i * 37 + 11); }

  // Creates the file with `size` patterned bytes through the fd.
  static void FillFile(mk::Env& env, UnixProcess* proc, int fd, uint64_t size) {
    std::vector<uint8_t> data(size);
    for (uint64_t i = 0; i < size; ++i) {
      data[i] = PatternByte(i);
    }
    auto wrote = proc->Write(env, fd, data.data(), static_cast<uint32_t>(size));
    ASSERT_TRUE(wrote.ok());
    ASSERT_EQ(*wrote, size);
    ASSERT_TRUE(proc->Lseek(env, fd, 0, 0).ok());
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::JfsFs> jfs_;
  mk::Task* fs_task_;
  std::unique_ptr<svc::FileServer> fs_;
};

constexpr uint64_t kOddSize = hw::kPageSize + 123;

TEST_F(UnixMmapTest, SharedMappingMatchesReadAndMsyncPublishesStores) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("mapper", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/shared.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    FillFile(env, proc, *fd, kOddSize);
    auto addr = proc->Mmap(env, *fd, kOddSize, /*shared=*/true);
    ASSERT_TRUE(addr.ok()) << base::StatusName(addr.status());

    // Differential: every mapped byte equals the read() byte, including the
    // short final page; past EOF the mapping reads zeros.
    std::vector<uint8_t> via_map(kOddSize);
    ASSERT_EQ(env.CopyIn(*addr, via_map.data(), via_map.size()), base::Status::kOk);
    std::vector<uint8_t> via_read(kOddSize);
    auto got = proc->Read(env, *fd, via_read.data(), static_cast<uint32_t>(kOddSize));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, kOddSize);
    EXPECT_EQ(via_map, via_read);
    uint8_t tail[8] = {};
    ASSERT_EQ(env.CopyIn(*addr + kOddSize, tail, sizeof(tail)), base::Status::kOk);
    for (uint8_t b : tail) {
      EXPECT_EQ(b, 0) << "bytes past EOF read as zeros";
    }

    // A mapped store is NOT visible to read() until msync...
    const char tag[] = "mapped!";
    ASSERT_EQ(env.CopyOut(*addr + 200, tag, sizeof(tag)), base::Status::kOk);
    char before[sizeof(tag)] = {};
    ASSERT_TRUE(proc->Lseek(env, *fd, 200, 0).ok());
    ASSERT_TRUE(proc->Read(env, *fd, before, sizeof(tag)).ok());
    EXPECT_NE(std::memcmp(before, tag, sizeof(tag)), 0)
        << "stores stay in the mapping until msync";
    // ...and IS after.
    ASSERT_EQ(proc->Msync(env, *addr, kOddSize), base::Status::kOk);
    char after[sizeof(tag)] = {};
    ASSERT_TRUE(proc->Lseek(env, *fd, 200, 0).ok());
    ASSERT_TRUE(proc->Read(env, *fd, after, sizeof(tag)).ok());
    EXPECT_EQ(std::memcmp(after, tag, sizeof(tag)), 0);

    // msync never extends the file: the store landed inside the page but the
    // size is still the original odd size.
    auto end = proc->Lseek(env, *fd, 0, 2);
    ASSERT_TRUE(end.ok());
    EXPECT_EQ(*end, kOddSize);

    ASSERT_EQ(proc->Munmap(env, *addr), base::Status::kOk);
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    EXPECT_EQ(fs_->mapped_objects(), 0u);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(UnixMmapTest, PrivateMappingIsCopyOnWriteAndMsyncIsANoop) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("cow", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/private.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    FillFile(env, proc, *fd, kOddSize);
    auto addr = proc->Mmap(env, *fd, kOddSize, /*shared=*/false);
    ASSERT_TRUE(addr.ok()) << base::StatusName(addr.status());

    // The private view starts as the file contents...
    uint8_t b = 0;
    ASSERT_EQ(env.CopyIn(*addr + 7, &b, 1), base::Status::kOk);
    EXPECT_EQ(b, PatternByte(7));
    // ...a store changes the view...
    const uint8_t poke = 0xC3;
    ASSERT_EQ(env.CopyOut(*addr + 7, &poke, 1), base::Status::kOk);
    ASSERT_EQ(env.CopyIn(*addr + 7, &b, 1), base::Status::kOk);
    EXPECT_EQ(b, poke);
    // ...and msync of a private mapping changes NOTHING in the file.
    ASSERT_EQ(proc->Msync(env, *addr, kOddSize), base::Status::kOk);
    uint8_t file_b = 0;
    ASSERT_TRUE(proc->Lseek(env, *fd, 7, 0).ok());
    ASSERT_TRUE(proc->Read(env, *fd, &file_b, 1).ok());
    EXPECT_EQ(file_b, PatternByte(7)) << "private stores never reach the file";

    ASSERT_EQ(proc->Munmap(env, *addr), base::Status::kOk);
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(UnixMmapTest, ForkInheritsSharedMappingBothWaysAndPrivateCopies) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* parent = nullptr;
  uint8_t child_saw_shared = 0;
  uint8_t child_saw_private = 0;
  uint8_t parent_saw_child_store = 0;
  uint8_t parent_private_after_child_store = 0;
  parent = unix_pers.Spawn("parent", [&](mk::Env& env) {
    auto fd = parent->Open(env, "/forkmap.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    FillFile(env, parent, *fd, kOddSize);
    auto shared_addr = parent->Mmap(env, *fd, kOddSize, /*shared=*/true);
    ASSERT_TRUE(shared_addr.ok());
    auto private_addr = parent->Mmap(env, *fd, kOddSize, /*shared=*/false);
    ASSERT_TRUE(private_addr.ok());
    // Fault both in and give the private page a parent-local value.
    const uint8_t parent_priv = 0x77;
    ASSERT_EQ(env.CopyOut(*private_addr + 3, &parent_priv, 1), base::Status::kOk);

    auto child = parent->Fork(env, [&, sa = *shared_addr, pa = *private_addr](mk::Env& cenv) {
      uint8_t b = 0;
      ASSERT_EQ(cenv.CopyIn(sa + 5, &b, 1), base::Status::kOk);
      child_saw_shared = b;
      ASSERT_EQ(cenv.CopyIn(pa + 3, &b, 1), base::Status::kOk);
      child_saw_private = b;
      // Child's shared store is visible to the parent (same memory object);
      // its private store is not (COW gave the child its own page).
      const uint8_t shared_store = 0xA1;
      ASSERT_EQ(cenv.CopyOut(sa + 5, &shared_store, 1), base::Status::kOk);
      const uint8_t private_store = 0xB2;
      ASSERT_EQ(cenv.CopyOut(pa + 3, &private_store, 1), base::Status::kOk);
    });
    ASSERT_TRUE(child.ok()) << base::StatusName(child.status());
    (*child)->Exit(env, 0);
    ASSERT_TRUE(parent->WaitPid(env, *child).ok());

    uint8_t b = 0;
    ASSERT_EQ(env.CopyIn(*shared_addr + 5, &b, 1), base::Status::kOk);
    parent_saw_child_store = b;
    ASSERT_EQ(env.CopyIn(*private_addr + 3, &b, 1), base::Status::kOk);
    parent_private_after_child_store = b;

    ASSERT_EQ(parent->Munmap(env, *shared_addr), base::Status::kOk);
    ASSERT_EQ(parent->Munmap(env, *private_addr), base::Status::kOk);
    ASSERT_EQ(parent->Close(env, *fd), base::Status::kOk);
    StopFs(env, *parent->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(child_saw_shared, PatternByte(5));
  EXPECT_EQ(child_saw_private, 0x77) << "the child inherits the parent's private view";
  EXPECT_EQ(parent_saw_child_store, 0xA1) << "shared mappings are shared across fork";
  EXPECT_EQ(parent_private_after_child_store, 0x77)
      << "the child's private store must not leak into the parent";
}

// The FS cache and mapped views must agree: with the client cache on, an fd
// write while a mapping is live is written through (not write-behind), so
// the server invalidates the clean mapped page and the next mapped read
// sees the new bytes.
TEST_F(UnixMmapTest, FsCacheStaysCoherentWithMappedViews) {
  UnixPersonality unix_pers(kernel_, *fs_);
  unix_pers.EnableFsCache();
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("cached", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/cached.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    FillFile(env, proc, *fd, kOddSize);
    auto addr = proc->Mmap(env, *fd, kOddSize, /*shared=*/true);
    ASSERT_TRUE(addr.ok()) << base::StatusName(addr.status());

    // Fault the first page in (clean).
    uint8_t b = 0;
    ASSERT_EQ(env.CopyIn(*addr, &b, 1), base::Status::kOk);
    EXPECT_EQ(b, PatternByte(0));
    // fd write over the mapped page, through the cache.
    const uint8_t fresh = 0xD4;
    ASSERT_TRUE(proc->Lseek(env, *fd, 0, 0).ok());
    ASSERT_TRUE(proc->Write(env, *fd, &fresh, 1).ok());
    // The mapped view must observe it: live mappings force write-through,
    // the server's invalidation drops the clean page, the read refaults.
    ASSERT_EQ(env.CopyIn(*addr, &b, 1), base::Status::kOk);
    EXPECT_EQ(b, fresh) << "cached fd writes must reach live mappings";

    // And the reverse: a mapped store published by msync is visible through
    // cached reads (msync goes through the same session the cache fronts).
    const uint8_t store = 0xE5;
    ASSERT_EQ(env.CopyOut(*addr + 64, &store, 1), base::Status::kOk);
    ASSERT_EQ(proc->Msync(env, *addr, kOddSize), base::Status::kOk);
    uint8_t file_b = 0;
    ASSERT_TRUE(proc->Lseek(env, *fd, 64, 0).ok());
    ASSERT_TRUE(proc->Read(env, *fd, &file_b, 1).ok());
    EXPECT_EQ(file_b, store);

    ASSERT_EQ(proc->Munmap(env, *addr), base::Status::kOk);
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(UnixMmapTest, MmapRejectsPipesAndZeroLength) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("edge", [&](mk::Env& env) {
    auto pipe = proc->Pipe(env);
    ASSERT_TRUE(pipe.ok());
    auto bad = proc->Mmap(env, pipe->first, hw::kPageSize, /*shared=*/true);
    EXPECT_FALSE(bad.ok()) << "pipes are not mappable";
    auto fd = proc->Open(env, "/edge.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    auto zero = proc->Mmap(env, *fd, 0, /*shared=*/true);
    EXPECT_FALSE(zero.ok()) << "zero-length mmap is invalid";
    auto nofd = proc->Mmap(env, 99, hw::kPageSize, /*shared=*/true);
    EXPECT_FALSE(nofd.ok());
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

}  // namespace
}  // namespace pers
