#include <gtest/gtest.h>

#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/fat.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

// Runs `body` inside a simulated thread with a block cache over a fresh disk.
class PfsTest : public mk::KernelTest {
 protected:
  PfsTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("d", 3)));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, /*latency_ns=*/10'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 512);
    task_ = kernel_.CreateTask("fs");
  }

  void RunInThread(std::function<void(mk::Env&)> body) {
    kernel_.CreateThread(task_, "t", std::move(body));
    ASSERT_EQ(kernel_.Run(), 0u);
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> cache_;
  mk::Task* task_;
};

TEST_F(PfsTest, BlockCacheHitsAndWritebacks) {
  RunInThread([&](mk::Env& env) {
    uint8_t buf[512] = {1, 2, 3};
    ASSERT_EQ(cache_->WriteSector(env, 7, buf), base::Status::kOk);
    uint8_t out[512];
    ASSERT_EQ(cache_->ReadSector(env, 7, out), base::Status::kOk);
    EXPECT_EQ(out[2], 3);
    EXPECT_GE(cache_->hits(), 1u);
    // Dirty data is not on the platter until flush.
    uint8_t platter[512];
    disk_->ReadSectors(7, 1, platter);
    EXPECT_NE(platter[2], 3);
    ASSERT_EQ(cache_->Flush(env), base::Status::kOk);
    disk_->ReadSectors(7, 1, platter);
    EXPECT_EQ(platter[2], 3);
  });
}

TEST_F(PfsTest, BlockCacheSoakBoundsKernelHeap) {
  // A small cache pushed through many times its capacity of distinct
  // sectors: every miss past capacity evicts, and evicted buffers must be
  // recycled — the kernel heap is a bump allocator, so without the free
  // list this soak walks off the end of the heap.
  constexpr uint32_t kCapacity = 32;
  constexpr uint64_t kDistinct = 6 * kCapacity;  // >= 4x capacity
  BlockCache small(kernel_, store_.get(), kCapacity);
  RunInThread([&](mk::Env& env) {
    const uint64_t heap0 = kernel_.heap().bytes_allocated();
    uint8_t buf[BlockCache::kSectorSize] = {};
    for (uint64_t lba = 0; lba < kDistinct; ++lba) {
      buf[0] = static_cast<uint8_t>(lba);
      ASSERT_EQ(small.WriteSector(env, lba, buf), base::Status::kOk);
    }
    const uint64_t heap_growth = kernel_.heap().bytes_allocated() - heap0;
    // Only the resident set may hold heap memory; evictions recycle.
    EXPECT_LE(heap_growth, uint64_t{kCapacity} * BlockCache::kSectorSize);
    EXPECT_EQ(small.misses(), kDistinct);
    EXPECT_GE(small.writebacks(), kDistinct - kCapacity);
    // Evicted dirty sectors were written back in LRU order and are intact.
    uint8_t platter[BlockCache::kSectorSize];
    disk_->ReadSectors(0, 1, platter);
    EXPECT_EQ(platter[0], 0);
    disk_->ReadSectors(kCapacity + 1, 1, platter);
    EXPECT_EQ(platter[0], static_cast<uint8_t>(kCapacity + 1));
    // Sectors still resident are NOT yet on the platter (write-back, not
    // write-through): the most recently written sector only hits the disk
    // on flush.
    disk_->ReadSectors(kDistinct - 1, 1, platter);
    EXPECT_NE(platter[0], static_cast<uint8_t>(kDistinct - 1));
    ASSERT_EQ(small.Flush(env), base::Status::kOk);
    disk_->ReadSectors(kDistinct - 1, 1, platter);
    EXPECT_EQ(platter[0], static_cast<uint8_t>(kDistinct - 1));
    // Re-reading an evicted sector round-trips through the writeback.
    ASSERT_EQ(small.ReadSector(env, 3, buf), base::Status::kOk);
    EXPECT_EQ(buf[0], 3);
    // Each miss at capacity recycles the just-evicted buffer immediately,
    // so the free list never grows beyond the eviction in flight.
    EXPECT_LE(small.free_list_size(), 1u);
  });
}

TEST_F(PfsTest, BlockCacheHitChargesDataOnce) {
  // Regression for the double charge: a hit used to pay a 64-byte touch in
  // GetSector plus the full sector in ReadSector. Now the only data traffic
  // on a hit is the caller's single full-sector access.
  RunInThread([&](mk::Env& env) {
    uint8_t buf[BlockCache::kSectorSize] = {9};
    ASSERT_EQ(cache_->WriteSector(env, 11, buf), base::Status::kOk);
    ASSERT_EQ(cache_->ReadSector(env, 11, buf), base::Status::kOk);  // warm
    const uint64_t accesses0 = kernel_.cpu().counters().data_accesses;
    ASSERT_EQ(cache_->ReadSector(env, 11, buf), base::Status::kOk);
    const uint64_t per_hit = kernel_.cpu().counters().data_accesses - accesses0;
    // data_accesses counts AccessData calls: exactly the caller's one
    // full-sector read. The old code added a second, 64-byte touch in
    // GetSector over the same address range.
    EXPECT_EQ(per_hit, 1u);
  });
}

TEST_F(PfsTest, FatFormatCreateReadWrite) {
  FatFs fat(kernel_, cache_.get(), 8192);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(fat.Format(env), base::Status::kOk);
    auto file = fat.Create(env, FatFs::kRootNode, "HELLO.TXT", false);
    ASSERT_TRUE(file.ok());
    const char msg[] = "fat file system says hi";
    auto wrote = fat.Write(env, *file, 0, msg, sizeof(msg));
    ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, sizeof(msg));
    char out[64] = {};
    auto got = fat.Read(env, *file, 0, out, sizeof(out));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sizeof(msg));
    EXPECT_STREQ(out, msg);
    auto attr = fat.GetAttr(env, *file);
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, sizeof(msg));
  });
}

TEST_F(PfsTest, FatRejectsLongNames) {
  FatFs fat(kernel_, cache_.get(), 8192);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(fat.Format(env), base::Status::kOk);
    // The paper's FAT incompatibility: no way to store a long name.
    EXPECT_EQ(fat.Create(env, FatFs::kRootNode, "longfilename.txt", false).status(),
              base::Status::kNotSupported);
    EXPECT_EQ(fat.Create(env, FatFs::kRootNode, "file.longext", false).status(),
              base::Status::kNotSupported);
    // 8.3 names are uppercased, not case-preserved.
    ASSERT_TRUE(fat.Create(env, FatFs::kRootNode, "mixed.txt", false).ok());
    auto entries = fat.ReadDir(env, FatFs::kRootNode);
    ASSERT_TRUE(entries.ok());
    ASSERT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0].name, "MIXED.TXT");
    // Lookup is case-insensitive.
    EXPECT_TRUE(fat.Lookup(env, FatFs::kRootNode, "MiXeD.TxT").ok());
  });
}

TEST_F(PfsTest, FatSubdirectoriesAndRemove) {
  FatFs fat(kernel_, cache_.get(), 8192);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(fat.Format(env), base::Status::kOk);
    auto dir = fat.Create(env, FatFs::kRootNode, "SUBDIR", true);
    ASSERT_TRUE(dir.ok());
    auto file = fat.Create(env, *dir, "A.DAT", false);
    ASSERT_TRUE(file.ok());
    // Non-empty directory cannot be removed.
    EXPECT_EQ(fat.Remove(env, FatFs::kRootNode, "SUBDIR"), base::Status::kBusy);
    ASSERT_EQ(fat.Remove(env, *dir, "A.DAT"), base::Status::kOk);
    EXPECT_EQ(fat.Remove(env, FatFs::kRootNode, "SUBDIR"), base::Status::kOk);
    EXPECT_EQ(fat.Lookup(env, FatFs::kRootNode, "SUBDIR").status(), base::Status::kNotFound);
  });
}

TEST_F(PfsTest, FatClusterReuseAfterDelete) {
  FatFs fat(kernel_, cache_.get(), 8192);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(fat.Format(env), base::Status::kOk);
    const uint64_t free0 = fat.free_clusters();
    auto file = fat.Create(env, FatFs::kRootNode, "BIG.BIN", false);
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data(5 * FatFs::kClusterBytes, 0xaa);
    ASSERT_TRUE(fat.Write(env, *file, 0, data.data(), static_cast<uint32_t>(data.size())).ok());
    EXPECT_EQ(fat.free_clusters(), free0 - 5);
    ASSERT_EQ(fat.Remove(env, FatFs::kRootNode, "BIG.BIN"), base::Status::kOk);
    EXPECT_EQ(fat.free_clusters(), free0);
  });
}

TEST_F(PfsTest, FatPersistsAcrossRemount) {
  {
    FatFs fat(kernel_, cache_.get(), 8192);
    RunInThread([&](mk::Env& env) {
      ASSERT_EQ(fat.Format(env), base::Status::kOk);
      auto file = fat.Create(env, FatFs::kRootNode, "KEEP.ME", false);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(fat.Write(env, *file, 0, "persist", 8).ok());
      ASSERT_EQ(fat.Sync(env), base::Status::kOk);
    });
  }
  FatFs fat2(kernel_, cache_.get(), 8192);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(fat2.Mount(env), base::Status::kOk);
    auto file = fat2.Lookup(env, FatFs::kRootNode, "KEEP.ME");
    ASSERT_TRUE(file.ok());
    char out[16] = {};
    ASSERT_TRUE(fat2.Read(env, *file, 0, out, sizeof(out)).ok());
    EXPECT_STREQ(out, "persist");
  });
}

TEST_F(PfsTest, HpfsLongNamesCasePreservedCaseInsensitive) {
  HpfsFs hpfs(kernel_, cache_.get(), 16384);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(hpfs.Format(env), base::Status::kOk);
    auto file = hpfs.Create(env, InodeFs::kRootInode, "My Long Document Name.text", false);
    ASSERT_TRUE(file.ok());
    // Case-insensitive lookup finds it...
    EXPECT_TRUE(hpfs.Lookup(env, InodeFs::kRootInode, "my long document name.TEXT").ok());
    // ...and the stored case is preserved.
    auto entries = hpfs.ReadDir(env, InodeFs::kRootInode);
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ((*entries)[0].name, "My Long Document Name.text");
  });
}

TEST_F(PfsTest, HpfsExtendedAttributes) {
  HpfsFs hpfs(kernel_, cache_.get(), 16384);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(hpfs.Format(env), base::Status::kOk);
    auto file = hpfs.Create(env, InodeFs::kRootInode, "doc.txt", false);
    ASSERT_TRUE(file.ok());
    ASSERT_EQ(hpfs.SetEa(env, *file, ".TYPE", "Plain Text"), base::Status::kOk);
    ASSERT_EQ(hpfs.SetEa(env, *file, ".ICON", "doc"), base::Status::kOk);
    auto type = hpfs.GetEa(env, *file, ".TYPE");
    ASSERT_TRUE(type.ok());
    EXPECT_EQ(*type, "Plain Text");
    // Overwrite in place.
    ASSERT_EQ(hpfs.SetEa(env, *file, ".TYPE", "Rich Text"), base::Status::kOk);
    EXPECT_EQ(*hpfs.GetEa(env, *file, ".TYPE"), "Rich Text");
    // Slots exhausted.
    EXPECT_EQ(hpfs.SetEa(env, *file, ".THIRD", "x"), base::Status::kNoSpace);
  });
}

TEST_F(PfsTest, JfsCaseSensitiveNames) {
  JfsFs jfs(kernel_, cache_.get(), 16384);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(jfs.Format(env), base::Status::kOk);
    ASSERT_TRUE(jfs.Create(env, InodeFs::kRootInode, "Makefile", false).ok());
    ASSERT_TRUE(jfs.Create(env, InodeFs::kRootInode, "makefile", false).ok());
    EXPECT_TRUE(jfs.Lookup(env, InodeFs::kRootInode, "Makefile").ok());
    EXPECT_TRUE(jfs.Lookup(env, InodeFs::kRootInode, "makefile").ok());
    EXPECT_EQ(jfs.Lookup(env, InodeFs::kRootInode, "MAKEFILE").status(),
              base::Status::kNotFound);
  });
}

TEST_F(PfsTest, JfsLargeFileThroughIndirectBlocks) {
  JfsFs jfs(kernel_, cache_.get(), 32768);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(jfs.Format(env), base::Status::kOk);
    auto file = jfs.Create(env, InodeFs::kRootInode, "big.bin", false);
    ASSERT_TRUE(file.ok());
    // > 12 direct blocks (12 * 512 = 6 KB): forces the indirect path.
    std::vector<uint8_t> data(20 * 1024);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i % 251);
    }
    auto wrote = jfs.Write(env, *file, 0, data.data(), static_cast<uint32_t>(data.size()));
    ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, data.size());
    std::vector<uint8_t> back(data.size());
    auto got = jfs.Read(env, *file, 0, back.data(), static_cast<uint32_t>(back.size()));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(back, data);
    // Offset read in the indirect zone.
    uint8_t b = 0;
    ASSERT_TRUE(jfs.Read(env, *file, 10'000, &b, 1).ok());
    EXPECT_EQ(b, static_cast<uint8_t>(10'000 % 251));
  });
}

TEST_F(PfsTest, JfsJournalReplayAfterCrash) {
  JfsFs jfs(kernel_, cache_.get(), 32768);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(jfs.Format(env), base::Status::kOk);
    ASSERT_TRUE(jfs.Create(env, InodeFs::kRootInode, "survivor", false).ok());
    ASSERT_EQ(jfs.Sync(env), base::Status::kOk);
    // Crash in the middle of the next create: the journal is written but the
    // main metadata area is not.
    jfs.CrashBeforeApply();
    ASSERT_TRUE(jfs.Create(env, InodeFs::kRootInode, "committed-by-log", false).ok());
    ASSERT_EQ(jfs.Sync(env), base::Status::kOk);
  });
  // Remount: replay must make the logged create visible.
  JfsFs recovered(kernel_, cache_.get(), 32768);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(recovered.Mount(env), base::Status::kOk);
    EXPECT_EQ(recovered.journal_replays(), 1u);
    EXPECT_TRUE(recovered.Lookup(env, InodeFs::kRootInode, "survivor").ok());
    EXPECT_TRUE(recovered.Lookup(env, InodeFs::kRootInode, "committed-by-log").ok());
  });
}

TEST_F(PfsTest, JfsRenamePreservesInode) {
  JfsFs jfs(kernel_, cache_.get(), 16384);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(jfs.Format(env), base::Status::kOk);
    auto dir = jfs.Create(env, InodeFs::kRootInode, "dir", true);
    ASSERT_TRUE(dir.ok());
    auto file = jfs.Create(env, InodeFs::kRootInode, "old-name", false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(jfs.Write(env, *file, 0, "payload", 8).ok());
    ASSERT_EQ(jfs.Rename(env, InodeFs::kRootInode, "old-name", *dir, "new-name"),
              base::Status::kOk);
    EXPECT_EQ(jfs.Lookup(env, InodeFs::kRootInode, "old-name").status(),
              base::Status::kNotFound);
    auto moved = jfs.Lookup(env, *dir, "new-name");
    ASSERT_TRUE(moved.ok());
    EXPECT_EQ(*moved, *file) << "rename must not change the inode";
    char out[8] = {};
    ASSERT_TRUE(jfs.Read(env, *moved, 0, out, 8).ok());
    EXPECT_STREQ(out, "payload");
  });
}

TEST_F(PfsTest, InodeFsBlockAccountingOnRemove) {
  HpfsFs hpfs(kernel_, cache_.get(), 16384);
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(hpfs.Format(env), base::Status::kOk);
    const uint64_t free0 = hpfs.free_blocks();
    auto file = hpfs.Create(env, InodeFs::kRootInode, "temp", false);
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data(8 * 1024, 1);
    ASSERT_TRUE(hpfs.Write(env, *file, 0, data.data(), static_cast<uint32_t>(data.size())).ok());
    EXPECT_LT(hpfs.free_blocks(), free0);
    ASSERT_EQ(hpfs.Remove(env, InodeFs::kRootInode, "temp"), base::Status::kOk);
    // The root directory keeps one block for its entries; everything the
    // file held must come back.
    EXPECT_GE(hpfs.free_blocks() + 1, free0);
  });
}

}  // namespace
}  // namespace svc
