// Client-side FS cache: semantics must be byte-identical to the uncached
// client, only with fewer RPCs; coherence must survive writes (write-through
// invalidation) and caching must be invisible when disabled.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/svc/fs/file_server.h"
#include "src/svc/fs/fs_cache.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

// Disk -> block cache -> HPFS -> file server; the client under test runs in
// its own task with (or without) the client-side cache enabled.
class FsCacheTest : public mk::KernelTest {
 protected:
  FsCacheTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 256 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 1024);
    hpfs_ = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);

    fs_task_ = kernel_.CreateTask("file-server");
    server_ = std::make_unique<FileServer>(kernel_, fs_task_);
    EXPECT_EQ(server_->AddMount("/", hpfs_.get()), base::Status::kOk);
    client_task_ = kernel_.CreateTask("client");
    service_ = server_->GrantTo(*client_task_);

    kernel_.CreateThread(fs_task_, "mkfs",
                         [this](mk::Env& env) { ASSERT_EQ(hpfs_->Format(env), base::Status::kOk); });
  }

  void RunClient(bool cached, std::function<void(mk::Env&, FsClient&)> body) {
    kernel_.CreateThread(client_task_, "client", [this, cached, body](mk::Env& env) {
      FsClient fs(service_);
      if (cached) {
        fs.EnableCache();
      }
      body(env, fs);
      server_->Stop();
      (void)fs.Sync(env);  // unblock the server loop
    });
    ASSERT_EQ(kernel_.Run(), 0u);
  }

  // The server's per-request counter: the cache's whole point is shrinking
  // this for the same client-visible behaviour.
  uint64_t ServerOps() { return kernel_.tracer().metrics().Counter("server.fs.ops"); }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<HpfsFs> hpfs_;
  mk::Task* fs_task_;
  std::unique_ptr<FileServer> server_;
  mk::Task* client_task_;
  mk::PortName service_;
};

TEST_F(FsCacheTest, SequentialReadsAreByteIdenticalWithFewerRpcs) {
  // 16K of a deterministic pattern, written uncached-style (write-behind
  // flushed by Close), then read back twice: once through the cache, once
  // around it. Same bytes, fewer server round trips.
  RunClient(true, [&](mk::Env& env, FsClient& fs) {
    constexpr uint32_t kSize = 16 * 1024;
    constexpr uint32_t kChunk = 512;
    std::vector<uint8_t> data(kSize);
    for (uint32_t i = 0; i < kSize; ++i) {
      data[i] = static_cast<uint8_t>((i * 7 + 3) & 0xFF);
    }
    auto h = fs.Open(env, "/seq.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    for (uint32_t off = 0; off < kSize; off += kChunk) {
      auto wrote = fs.Write(env, *h, off, data.data() + off, kChunk);
      ASSERT_TRUE(wrote.ok());
      EXPECT_EQ(*wrote, kChunk);
    }
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);

    auto rh = fs.Open(env, "/seq.dat", 0);
    ASSERT_TRUE(rh.ok());
    const uint64_t ops_before = ServerOps();
    const uint64_t hits_before = fs.cache()->hits();
    std::vector<uint8_t> out(kSize);
    for (uint32_t off = 0; off < kSize; off += kChunk) {
      auto got = fs.Read(env, *rh, off, out.data() + off, kChunk);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, kChunk);
    }
    const uint64_t read_rpcs = ServerOps() - ops_before;
    EXPECT_EQ(out, data);
    EXPECT_LT(read_rpcs, kSize / kChunk / 2)
        << "read-ahead should serve most sequential reads without an RPC";
    EXPECT_GT(fs.cache()->hits(), hits_before);
    // Reading past EOF behaves exactly like the uncached client: short read.
    uint8_t tail[64];
    auto past = fs.Read(env, *rh, kSize - 16, tail, sizeof(tail));
    ASSERT_TRUE(past.ok());
    EXPECT_EQ(*past, 16u);
    ASSERT_EQ(fs.Close(env, *rh), base::Status::kOk);
  });
}

TEST_F(FsCacheTest, WriteThroughInvalidationKeepsReadsCoherent) {
  RunClient(true, [&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/coherent.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    char first[] = "aaaaaaaaaaaaaaaa";
    ASSERT_TRUE(fs.Write(env, *h, 0, first, sizeof(first)).ok());
    // Prime the read cache (sequential from 0 -> read-ahead span).
    char out[32] = {};
    auto got = fs.Read(env, *h, 0, out, sizeof(first));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(out, first, sizeof(first)), 0);
    // Overwrite the cached span; the overlapping read span must drop.
    const uint64_t inval_before = fs.cache()->invalidations();
    char second[] = "bbbbbbbbbbbbbbbb";
    ASSERT_TRUE(fs.Write(env, *h, 0, second, sizeof(second)).ok());
    EXPECT_GT(fs.cache()->invalidations(), inval_before);
    // The next read sees the new bytes, not the stale cached span.
    std::memset(out, 0, sizeof(out));
    got = fs.Read(env, *h, 0, out, sizeof(second));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(out, second, sizeof(second)), 0);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
  });
}

TEST_F(FsCacheTest, WriteBehindCoalescesAndFlushesOnClose) {
  RunClient(true, [&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/coalesce.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    const uint64_t ops_before = ServerOps();
    // 32 contiguous 128-byte writes: one coalesced run, zero RPCs until the
    // explicit flush point.
    uint8_t chunk[128];
    for (uint32_t i = 0; i < 32; ++i) {
      std::memset(chunk, 'A' + (i % 26), sizeof(chunk));
      auto wrote = fs.Write(env, *h, i * sizeof(chunk), chunk, sizeof(chunk));
      ASSERT_TRUE(wrote.ok());
      EXPECT_EQ(*wrote, sizeof(chunk));
    }
    EXPECT_EQ(ServerOps(), ops_before) << "contiguous small writes must buffer, not RPC";
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    EXPECT_GT(fs.cache()->writeback_bytes(), 0u);
    // Everything is on the server after close: verify around the cache.
    auto attr = fs.GetAttr(env, "/coalesce.dat");
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 32u * 128u);
    auto rh = fs.Open(env, "/coalesce.dat", 0);
    ASSERT_TRUE(rh.ok());
    uint8_t out[128] = {};
    auto got = fs.Read(env, *rh, 31 * 128, out, sizeof(out));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, sizeof(out));
    EXPECT_EQ(out[0], 'A' + (31 % 26));
    ASSERT_EQ(fs.Close(env, *rh), base::Status::kOk);
  });
}

TEST_F(FsCacheTest, StatServedFromPrimedAttrCache) {
  RunClient(true, [&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/stat.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    char payload[100] = {};
    ASSERT_TRUE(fs.Write(env, *h, 0, payload, sizeof(payload)).ok());
    const uint64_t ops_before = ServerOps();
    // The open reply primed the attr cache and the buffered write extended
    // it, so a stat needs no RPC — and still reflects the pending bytes.
    auto attr = fs.Stat(env, *h);
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, sizeof(payload));
    EXPECT_FALSE(attr->directory);
    EXPECT_EQ(ServerOps(), ops_before);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
  });
}

TEST_F(FsCacheTest, GenerationBumpDropsCleanStateKeepsDirty) {
  RunClient(true, [&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/gen.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    char first[16] = "fifteen + nul..";
    ASSERT_TRUE(fs.Write(env, *h, 0, first, sizeof(first)).ok());
    char out[64] = {};
    ASSERT_TRUE(fs.Read(env, *h, 0, out, sizeof(first)).ok());  // flushes + primes read-ahead
    // A second write left *dirty* in the write-behind run at bump time.
    char second[16] = "dirty at bump..";
    ASSERT_TRUE(fs.Write(env, *h, sizeof(first), second, sizeof(second)).ok());
    // Simulate a server-death notice: clean state (attrs, read-ahead) drops,
    // the dirty write-behind run must survive — it is the client's only copy.
    const uint64_t gen = fs.cache()->generation();
    fs.cache()->BumpGeneration();
    EXPECT_EQ(fs.cache()->generation(), gen + 1);
    const uint64_t ops_before = ServerOps();
    auto attr = fs.Stat(env, *h);
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, sizeof(first) + sizeof(second))
        << "the dirty run must reach the server before the post-bump stat answers";
    EXPECT_GT(ServerOps(), ops_before) << "post-bump stat must refetch from the server";
    std::memset(out, 0, sizeof(out));
    auto got = fs.Read(env, *h, 0, out, sizeof(first) + sizeof(second));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(out, first, sizeof(first)), 0);
    EXPECT_EQ(std::memcmp(out + sizeof(first), second, sizeof(second)), 0);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
  });
}

TEST_F(FsCacheTest, NameCacheStoresTakesAndDropsOnBump) {
  FsCache cache;
  cache.StoreName("svc.fs", 42);
  mk::PortName out = mk::kNullPort;
  ASSERT_TRUE(cache.LookupName("svc.fs", &out));
  EXPECT_EQ(out, 42u);
  // TakeName is one-shot: the robust resolver must not be handed the same
  // possibly-stale right twice.
  out = mk::kNullPort;
  ASSERT_TRUE(cache.TakeName("svc.fs", &out));
  EXPECT_EQ(out, 42u);
  EXPECT_FALSE(cache.TakeName("svc.fs", &out));
  cache.StoreName("svc.fs", 43);
  cache.BumpGeneration();
  EXPECT_FALSE(cache.LookupName("svc.fs", &out)) << "a new generation trusts no cached name";
}

// With the cache left off, the client must be bit-for-bit the old one: same
// RPC count, same server-side op mix. This is the bench-baseline guarantee.
TEST_F(FsCacheTest, DisabledCacheChangesNothing) {
  RunClient(false, [&](mk::Env& env, FsClient& fs) {
    ASSERT_EQ(fs.cache(), nullptr);
    const uint64_t rpcs_before = kernel_.rpc_calls();
    const uint64_t ops_before = ServerOps();
    auto h = fs.Open(env, "/off.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    char b[256] = {};
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(fs.Write(env, *h, i * sizeof(b), b, sizeof(b)).ok());
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(fs.Read(env, *h, i * sizeof(b), b, sizeof(b)).ok());
    }
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    // open + 8 writes + 8 reads + close, one RPC each: nothing buffered,
    // nothing prefetched, nothing skipped.
    EXPECT_EQ(kernel_.rpc_calls() - rpcs_before, 18u);
    EXPECT_EQ(ServerOps() - ops_before, 18u);
  });
}

}  // namespace
}  // namespace svc
