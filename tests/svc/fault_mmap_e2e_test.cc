// Crash/restart campaign with live memory mappings: the file server dies
// while a client has its file mmap'd. The recovery contract under test —
//
//   - clean mapped pages are dropped at death (the pager that produced them
//     is gone) and REFAULT against the respawned instance's fresh memory
//     object after mk::Kernel::AdoptPagerBacking re-points the surviving
//     VmObject at it;
//   - dirty mapped pages SURVIVE the crash (the client's copy is the only
//     copy) and reach the disk afterwards by msync-style replay through the
//     RobustFsSession, which re-opens the file on the new instance
//     transparently.
//
// The seed comes from WPOS_FAULT_SEED (default 1) so the CI fault-soak can
// sweep campaigns; every assertion here is seed-independent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/mks/restart/restart_manager.h"
#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/fs_robust.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

constexpr char kFsName[] = "/svc/fs";
constexpr uint64_t kFilePages = 4;
constexpr uint64_t kFileSize = kFilePages * hw::kPageSize;

uint64_t CampaignSeed() {
  const char* env = std::getenv("WPOS_FAULT_SEED");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  return std::strtoull(env, nullptr, 10);
}

class FaultMmapE2eTest : public mk::KernelTest {
 protected:
  FaultMmapE2eTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 256 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 1024);
    fs_ = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);

    ns_task_ = kernel_.CreateTask("mks-naming");
    ns_ = std::make_unique<mks::NameServer>(kernel_, ns_task_);
    mgr_task_ = kernel_.CreateTask("mks-restart");
    mks::RestartPolicy policy;
    policy.max_restarts = 8;
    mgr_ = std::make_unique<mks::RestartManager>(kernel_, mgr_task_, ns_->GrantTo(*mgr_task_),
                                                 policy);
    client_task_ = kernel_.CreateTask("client");
    ns_for_client_ = ns_->GrantTo(*client_task_);

    mk::Task* gen0 = SpawnFs();
    kernel_.CreateThread(gen0, "mkfs", [this](mk::Env& env) {
      ASSERT_EQ(fs_->Format(env), base::Status::kOk);
    });
    mgr_->Supervise(kFsName, gen0, [this](mk::Env&) {
      mk::Task* task = SpawnFs();
      auto right =
          kernel_.MakeSendRight(*task, servers_.back()->receive_port(), *mgr_task_);
      EXPECT_TRUE(right.ok());
      return mks::RestartManager::Respawned{task, right.ok() ? *right : mk::kNullPort};
    });
  }

  // Every generation exports memory objects: a respawn must be mappable so
  // a surviving object can adopt its backing.
  mk::Task* SpawnFs() {
    const uint64_t gen = static_cast<uint64_t>(servers_.size());
    mk::Task* task = kernel_.CreateTask("file-server-g" + std::to_string(gen));
    auto server = std::make_unique<FileServer>(kernel_, task, gen * 1'000'000 + 1);
    server->EnableMapping();
    EXPECT_EQ(server->AddMount("/", fs_.get()), base::Status::kOk);
    servers_.push_back(std::move(server));
    return task;
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<InodeFs> fs_;
  mk::Task* ns_task_;
  std::unique_ptr<mks::NameServer> ns_;
  mk::Task* mgr_task_;
  std::unique_ptr<mks::RestartManager> mgr_;
  mk::Task* client_task_;
  mk::PortName ns_for_client_ = mk::kNullPort;
  std::vector<std::unique_ptr<FileServer>> servers_;
};

TEST_F(FaultMmapE2eTest, CrashWithLiveMappingRecoversCleanAndDirtyPages) {
  const uint64_t seed = CampaignSeed();
  kernel_.faults().Enable(seed);

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    mks::NameClient nc(ns_for_client_);
    auto right =
        kernel_.MakeSendRight(*servers_[0]->task(), servers_[0]->receive_port(), *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kFsName, *right), base::Status::kOk);

    RobustFsSession session(ns_for_client_, kFsName);
    // Death notices wired the way a mapping-aware client runtime would: drop
    // the session's cached state AND every clean mapped page — the pager that
    // produced those pages died with its instance. Dirty pages are kept: the
    // client holds the only copy.
    std::shared_ptr<mk::VmObject> mapped;
    mgr_->AddDeathListener([&](const std::string& name) {
      if (name != kFsName) {
        return;
      }
      session.OnServerDeath();
      if (mapped != nullptr) {
        kernel_.VmObjectInvalidate(mapped.get(), 0, kFilePages, /*clean_only=*/true);
      }
    });

    auto handle = session.Open(env, "/mapped.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok()) << base::StatusName(handle.status());
    std::vector<uint8_t> data(kFileSize);
    for (uint64_t i = 0; i < kFileSize; ++i) {
      data[i] = static_cast<uint8_t>(i * 7 + 3);
    }
    auto wrote = session.Write(env, *handle, 0, data.data(), kFileSize);
    ASSERT_TRUE(wrote.ok());
    ASSERT_EQ(*wrote, kFileSize);

    auto m = session.MapObject(env, *handle);
    ASSERT_TRUE(m.ok()) << base::StatusName(m.status());
    EXPECT_EQ(m->size, kFileSize);
    mapped = kernel_.LookupPagedObject(m->object_id);
    ASSERT_NE(mapped, nullptr);
    auto base_addr = kernel_.VmMapObject(*client_task_, mapped, 0, mapped->size(),
                                         mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base_addr.ok());

    // Fault page 0 in clean; dirty page 2 with a store only the client holds.
    uint8_t probe = 0;
    ASSERT_EQ(kernel_.CopyIn(*client_task_, *base_addr, &probe, 1), base::Status::kOk);
    EXPECT_EQ(probe, data[0]);
    const char tag[] = "only-copy-is-here";
    ASSERT_EQ(kernel_.CopyOut(*client_task_, *base_addr + 2 * hw::kPageSize, tag, sizeof(tag)),
              base::Status::kOk);
    EXPECT_EQ(mapped->dirty_pages(), 1u);

    // Kill the serving instance on its next main-port request. The pager
    // loop has no fault point, so the crash lands on the session op below.
    kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                         mk::fault::FaultMode::kCrashTask, 100, /*max_fires=*/1);
    auto attr = session.Stat(env, *handle);
    ASSERT_TRUE(attr.ok()) << base::StatusName(attr.status());
    kernel_.faults().DisarmAll();
    ASSERT_EQ(mgr_->total_restarts(), 1u);

    // The crash dropped the clean pages; the dirty one survived untouched.
    EXPECT_FALSE(mapped->HasPage(0));
    EXPECT_TRUE(mapped->HasPage(2));
    EXPECT_TRUE(mapped->IsDirty(2));

    // Re-export from the respawn (session re-opens by path under the hood)
    // and re-point the surviving object at the fresh backing.
    auto fresh = session.MapObject(env, *handle);
    ASSERT_TRUE(fresh.ok()) << base::StatusName(fresh.status());
    EXPECT_NE(fresh->object_id, m->object_id) << "a respawn exports a new object";
    ASSERT_EQ(kernel_.AdoptPagerBacking(mapped, fresh->object_id), base::Status::kOk);

    // Clean pages refault against the new generation: page 0 reads the bytes
    // that survived on the disk.
    ASSERT_EQ(kernel_.CopyIn(*client_task_, *base_addr, &probe, 1), base::Status::kOk);
    EXPECT_EQ(probe, data[0]);
    // The dirty page still shows the client's store.
    char back[sizeof(tag)] = {};
    ASSERT_EQ(kernel_.CopyIn(*client_task_, *base_addr + 2 * hw::kPageSize, back, sizeof(tag)),
              base::Status::kOk);
    EXPECT_STREQ(back, tag);

    // msync-style replay: push every dirty page through the robust session
    // (crash-transparent), then mark clean so the store is published.
    for (uint64_t page : mapped->DirtyPages(0, kFilePages)) {
      std::vector<uint8_t> buf(hw::kPageSize);
      ASSERT_EQ(kernel_.CopyIn(*client_task_, *base_addr + page * hw::kPageSize, buf.data(),
                               buf.size()),
                base::Status::kOk);
      auto w = session.Write(env, *handle, page * hw::kPageSize, buf.data(),
                             static_cast<uint32_t>(buf.size()));
      ASSERT_TRUE(w.ok()) << base::StatusName(w.status());
      kernel_.VmObjectMarkClean(mapped.get(), page, 1);
    }
    EXPECT_EQ(mapped->dirty_pages(), 0u);
    // The replayed store is now visible through plain file reads.
    std::memset(back, 0, sizeof(back));
    auto got = session.Read(env, *handle, 2 * hw::kPageSize, back, sizeof(tag));
    ASSERT_TRUE(got.ok());
    EXPECT_STREQ(back, tag);

    ASSERT_EQ(kernel_.VmDeallocate(*client_task_, *base_addr, mapped->size()),
              base::Status::kOk);
    mapped.reset();
    ASSERT_EQ(kernel_.ReleasePagedObject(fresh->object_id), base::Status::kOk);
    ASSERT_EQ(session.Close(env, *handle), base::Status::kOk);

    servers_.back()->Stop();
    RobustFsSession fin(ns_for_client_, kFsName);
    (void)fin.Open(env, "/mapped.dat", 0);  // unblock the serve loop
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(mgr_->total_restarts(), 1u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Randomized campaign over the soak seeds: crashes fire at 10% of main-port
// handler entries while the client interleaves file writes with mapped-page
// differential reads. A mapped read that trips over a dead pager generation
// re-exports and adopts, exactly like a real fault-handler runtime would;
// every observation must still match what read() sees.
TEST_F(FaultMmapE2eTest, MappedReadsStayCoherentAcrossRandomCrashes) {
  const uint64_t seed = CampaignSeed();
  kernel_.faults().Enable(seed);
  kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                       mk::fault::FaultMode::kCrashTask, 10, /*max_fires=*/2);

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    mks::NameClient nc(ns_for_client_);
    auto right =
        kernel_.MakeSendRight(*servers_[0]->task(), servers_[0]->receive_port(), *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kFsName, *right), base::Status::kOk);

    RobustFsSession session(ns_for_client_, kFsName);
    std::shared_ptr<mk::VmObject> mapped;
    mgr_->AddDeathListener([&](const std::string& name) {
      if (name != kFsName) {
        return;
      }
      session.OnServerDeath();
      if (mapped != nullptr) {
        kernel_.VmObjectInvalidate(mapped.get(), 0, kFilePages, /*clean_only=*/true);
      }
    });

    auto handle = session.Open(env, "/soak.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok()) << base::StatusName(handle.status());
    // Size the file up front so the exported object covers every record.
    std::vector<uint8_t> zero(kFileSize, 0);
    ASSERT_TRUE(session.Write(env, *handle, 0, zero.data(), kFileSize).ok());
    auto m = session.MapObject(env, *handle);
    ASSERT_TRUE(m.ok()) << base::StatusName(m.status());
    mapped = kernel_.LookupPagedObject(m->object_id);
    ASSERT_NE(mapped, nullptr);
    auto base_addr = kernel_.VmMapObject(*client_task_, mapped, 0, mapped->size(),
                                         mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base_addr.ok());

    // Mapped read that recovers from a dead pager generation by re-export +
    // adopt; bounded retries (max_fires above bounds the crash count).
    auto mapped_read = [&](uint64_t off, void* out, uint64_t len) -> base::Status {
      base::Status st = base::Status::kInternal;
      for (int attempt = 0; attempt < 4; ++attempt) {
        st = kernel_.CopyIn(*client_task_, *base_addr + off, out, len);
        if (st == base::Status::kOk) {
          return st;
        }
        auto re = session.MapObject(env, *handle);
        if (!re.ok()) {
          return re.status();
        }
        const base::Status ad = kernel_.AdoptPagerBacking(mapped, re->object_id);
        if (ad != base::Status::kOk) {
          return ad;
        }
      }
      return st;
    };

    for (uint32_t i = 0; i < 30; ++i) {
      char record[64];
      std::memset(record, 0, sizeof(record));
      std::snprintf(record, sizeof(record), "record %u of the mapped soak", i);
      const uint64_t off = (i * sizeof(record)) % (kFileSize - sizeof(record));
      auto wrote = session.Write(env, *handle, off, record, sizeof(record));
      ASSERT_TRUE(wrote.ok()) << "write " << i << ": " << base::StatusName(wrote.status());
      // Differential check: the mapped view and read() must agree on the
      // record just written, whatever crashed in between.
      char via_map[64] = {};
      ASSERT_EQ(mapped_read(off, via_map, sizeof(via_map)), base::Status::kOk) << "iter " << i;
      char via_read[64] = {};
      auto got = session.Read(env, *handle, off, via_read, sizeof(via_read));
      ASSERT_TRUE(got.ok()) << "read " << i << ": " << base::StatusName(got.status());
      EXPECT_EQ(std::memcmp(via_map, via_read, sizeof(via_map)), 0)
          << "mapped and read() views diverge at iter " << i;
      EXPECT_STREQ(via_map, record);
    }
    ASSERT_EQ(session.Close(env, *handle), base::Status::kOk);
    ASSERT_EQ(kernel_.VmDeallocate(*client_task_, *base_addr, mapped->size()),
              base::Status::kOk);
    mapped.reset();

    kernel_.faults().DisarmAll();
    servers_.back()->Stop();
    RobustFsSession fin(ns_for_client_, kFsName);
    (void)fin.Open(env, "/soak.dat", 0);  // unblock the serve loop
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);

  const uint64_t crashes =
      kernel_.faults().fires(mk::fault::FaultPoint::kServerHandlerEntry);
  EXPECT_EQ(mgr_->total_restarts(), crashes);
  EXPECT_FALSE(mgr_->degraded(kFsName));
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace svc
