// End-to-end overload-and-hang campaign (the ISSUE 8 acceptance test): the
// file server is wedged mid-workload by a seeded kStallTask, its RPC queue
// is bounded so piled-up callers are shed with kBusy, and the watchdog
// force-restarts the wedged instance. Robust clients must ride through all
// of it: every op completes, no call ever blocks past its retry budget, and
// both recovery mechanisms (shed + watchdog kill) are observably exercised.
//
// Seeded via WPOS_FAULT_SEED like the crash campaign; the stall is armed at
// 100% with max_fires=1 at a point where the next handler entry is
// necessarily the file server's, so the asserted invariants hold for ANY
// seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/mks/restart/restart_manager.h"
#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/fs_robust.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

constexpr char kFsName[] = "/svc/fs";
constexpr uint64_t kBeatNs = 500'000;           // server heartbeat period
constexpr uint64_t kWatchdogDeadlineNs = 2'000'000;  // 4 missed beats = wedged
constexpr uint32_t kQueueLimit = 2;             // admission bound on the fs port

uint64_t CampaignSeed() {
  const char* env = std::getenv("WPOS_FAULT_SEED");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  return std::strtoull(env, nullptr, 10);
}

mk::RobustCallOptions BoundedOpts() {
  mk::RobustCallOptions opts;
  // Per-attempt deadline well above the watchdog deadline (so one wedge
  // costs at most ~one attempt), total budget bounded by max_attempts.
  opts.attempt_timeout_ns = 5'000'000;
  opts.max_attempts = 10;
  opts.retry_backoff_ns = 500'000;
  return opts;
}

// Upper bound on one robust call's simulated duration: every attempt's
// deadline plus every backoff sleep (doubling, un-jittered worst case).
// "No call blocks past its deadline" is asserted against this ceiling.
uint64_t RobustCallCeilingNs() {
  const mk::RobustCallOptions opts = BoundedOpts();
  uint64_t total = 0;
  uint64_t backoff = opts.retry_backoff_ns;
  for (uint32_t a = 0; a < opts.max_attempts; ++a) {
    total += opts.attempt_timeout_ns;
    if (a > 0) {
      total += backoff;
      backoff *= 2;
    }
  }
  return total + 10'000'000;  // slack for resolver RPCs and server work
}

class StallE2eTest : public mk::KernelTest {
 protected:
  StallE2eTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 256 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 1024);
    fs_ = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);

    ns_task_ = kernel_.CreateTask("mks-naming");
    ns_ = std::make_unique<mks::NameServer>(kernel_, ns_task_);
    mgr_task_ = kernel_.CreateTask("mks-restart");
    mks::RestartPolicy policy;
    policy.max_restarts = 4;
    policy.backoff_initial_ns = 100'000;
    policy.heartbeat_deadline_ns = kWatchdogDeadlineNs;
    mgr_ = std::make_unique<mks::RestartManager>(kernel_, mgr_task_, ns_->GrantTo(*mgr_task_),
                                                 policy);
    client_task_ = kernel_.CreateTask("client");
    ns_for_client_ = ns_->GrantTo(*client_task_);

    mk::Task* gen0 = SpawnFs();
    kernel_.CreateThread(gen0, "mkfs", [this](mk::Env& env) {
      ASSERT_EQ(fs_->Format(env), base::Status::kOk);
    });
    mgr_->Supervise(kFsName, gen0, [this](mk::Env&) {
      mk::Task* task = SpawnFs();
      auto right = kernel_.MakeSendRight(*task, servers_.back()->receive_port(), *mgr_task_);
      EXPECT_TRUE(right.ok());
      return mks::RestartManager::Respawned{task, right.ok() ? *right : mk::kNullPort};
    });
  }

  // Every generation gets the full overload armor: bounded RPC admission
  // on its service port and heartbeats to the manager's watchdog.
  mk::Task* SpawnFs() {
    const uint64_t gen = static_cast<uint64_t>(servers_.size());
    mk::Task* task = kernel_.CreateTask("file-server-g" + std::to_string(gen));
    auto server = std::make_unique<FileServer>(kernel_, task, gen * 1'000'000 + 1);
    EXPECT_EQ(server->AddMount("/", fs_.get()), base::Status::kOk);
    EXPECT_EQ(kernel_.PortSetQueueLimit(*task, server->receive_port(), kQueueLimit),
              base::Status::kOk);
    auto health = mgr_->HealthRightFor(*task);
    EXPECT_TRUE(health.ok());
    server->EnableHeartbeat(*health, 1, kBeatNs);
    servers_.push_back(std::move(server));
    return task;
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<InodeFs> fs_;
  mk::Task* ns_task_;
  std::unique_ptr<mks::NameServer> ns_;
  mk::Task* mgr_task_;
  std::unique_ptr<mks::RestartManager> mgr_;
  mk::Task* client_task_;
  mk::PortName ns_for_client_ = mk::kNullPort;
  std::vector<std::unique_ptr<FileServer>> servers_;
};

TEST_F(StallE2eTest, WedgedServerIsShedKilledAndRestartedUnderClientsNoses) {
  const uint64_t seed = CampaignSeed();
  kernel_.faults().Enable(seed);
  kernel_.tracer().Enable();

  constexpr int kClients = 4;
  constexpr uint32_t kRecords = 12;
  const uint64_t call_ceiling_ns = RobustCallCeilingNs();
  int finished = 0;
  uint64_t worst_call_ns = 0;
  uint64_t kills_at_shutdown = 0;

  for (int c = 0; c < kClients; ++c) {
    kernel_.CreateThread(client_task_, "client" + std::to_string(c), [&, c](mk::Env& env) {
      mks::NameClient nc(ns_for_client_);
      if (c == 0) {
        auto right = kernel_.MakeSendRight(*servers_[0]->task(), servers_[0]->receive_port(),
                                           *client_task_);
        ASSERT_TRUE(right.ok());
        ASSERT_EQ(nc.Register(env, kFsName, *right), base::Status::kOk);
      } else {
        // Let client 0 register and arm before the herd piles in.
        (void)env.SleepNs(200'000);
      }

      RobustFsSession session(ns_for_client_, kFsName, BoundedOpts());
      const std::string path = "/stall-" + std::to_string(c) + ".dat";
      auto handle = session.Open(env, path, kFsCreate | kFsWrite);
      ASSERT_TRUE(handle.ok()) << base::StatusName(handle.status());

      if (c == 0) {
        // First write completes clean, then the NEXT handler entry — which
        // is necessarily the file server's (every client's cached port is
        // warm, the name server is idle) — wedges the serving thread.
        char warm[32] = "warm-up record";
        auto w = session.Write(env, *handle, 0, warm, sizeof(warm));
        ASSERT_TRUE(w.ok());
        kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                             mk::fault::FaultMode::kStallTask, 100, /*max_fires=*/1);
      }

      for (uint32_t i = 0; i < kRecords; ++i) {
        char block[64];
        std::memset(block, 0, sizeof(block));
        std::snprintf(block, sizeof(block), "client %d record %u", c, i);
        const uint64_t t0 = env.NowNs();
        auto wrote = session.Write(env, *handle, (i + 1) * sizeof(block), block, sizeof(block));
        const uint64_t write_ns = env.NowNs() - t0;
        ASSERT_TRUE(wrote.ok()) << "client " << c << " write " << i << ": "
                                << base::StatusName(wrote.status());
        ASSERT_EQ(*wrote, sizeof(block));
        EXPECT_LE(write_ns, call_ceiling_ns)
            << "client " << c << " write " << i << " blocked past its retry budget";
        if (write_ns > worst_call_ns) {
          worst_call_ns = write_ns;
        }
        char back[64] = {};
        const uint64_t r0 = env.NowNs();
        auto got = session.Read(env, *handle, (i + 1) * sizeof(block), back, sizeof(back));
        const uint64_t read_ns = env.NowNs() - r0;
        ASSERT_TRUE(got.ok()) << "client " << c << " read " << i << ": "
                              << base::StatusName(got.status());
        EXPECT_LE(read_ns, call_ceiling_ns);
        EXPECT_STREQ(back, block);
      }
      ASSERT_EQ(session.Close(env, *handle), base::Status::kOk);

      if (++finished == kClients) {
        kernel_.faults().DisarmAll();
        kills_at_shutdown = mgr_->watchdog_kills(kFsName);
        // Deliberate shutdown must be withdrawn from supervision first, or
        // the watchdog would mistake the stopped server for a wedged one and
        // respawn an orphan. The serve loop notices Stop() on its next
        // heartbeat tick, so no unblocking call is needed.
        mgr_->Unsupervise(kFsName);
        servers_.back()->Stop();
        mgr_->Stop();
        ns_->Stop();
        (void)nc.Resolve(env, "/x");  // unblock the name server's forever-park
      }
    });
  }
  EXPECT_EQ(kernel_.Run(), 0u);

  // Both halves of the tentpole actually happened, whatever the seed:
  // the wedged instance was watchdog-killed and restarted...
  EXPECT_EQ(kernel_.faults().fires(mk::fault::FaultPoint::kServerHandlerEntry), 1u);
  // (Sampled before Unsupervise dropped the entry; the metric is durable.)
  EXPECT_EQ(kills_at_shutdown, 1u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter(std::string("restart.") + kFsName +
                                               ".watchdog_kills"),
            1u);
  EXPECT_GE(mgr_->total_restarts(), 1u);
  EXPECT_FALSE(mgr_->degraded(kFsName));
  EXPECT_GE(servers_.size(), 2u);
  // ...and the bounded queue shed real callers while it was wedged.
  EXPECT_GT(kernel_.tracer().metrics().Counter("mk.rpc.shed"), 0u);
  EXPECT_GT(kernel_.tracer().metrics().Hist("mk.rpc.queue_depth").count(), 0u);
  EXPECT_GT(worst_call_ns, 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace svc
