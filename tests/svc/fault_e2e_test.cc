// End-to-end fault-injection campaign: the file server is crashed by the
// injector mid-workload, the restart manager respawns it, and a client
// going through RobustFsSession never notices — every open/write/read/close
// in the workload succeeds, for ANY seed.
//
// The seed comes from WPOS_FAULT_SEED (default 1) so CI can soak many
// campaigns over the same binary; the invariants asserted here are
// seed-independent: zero client-visible failures, and the restart metrics
// equal to the injected crash count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/mk/trace/exporters.h"
#include "src/mks/restart/restart_manager.h"
#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/fs_robust.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

constexpr char kFsName[] = "/svc/fs";

uint64_t CampaignSeed() {
  const char* env = std::getenv("WPOS_FAULT_SEED");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  return std::strtoull(env, nullptr, 10);
}

class FaultE2eTest : public mk::KernelTest {
 protected:
  FaultE2eTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 256 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 1024);
    fs_ = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);

    ns_task_ = kernel_.CreateTask("mks-naming");
    ns_ = std::make_unique<mks::NameServer>(kernel_, ns_task_);
    mgr_task_ = kernel_.CreateTask("mks-restart");
    mks::RestartPolicy policy;
    policy.max_restarts = 8;  // well above the armed max_fires
    mgr_ = std::make_unique<mks::RestartManager>(kernel_, mgr_task_, ns_->GrantTo(*mgr_task_),
                                                 policy);
    client_task_ = kernel_.CreateTask("client");
    ns_for_client_ = ns_->GrantTo(*client_task_);

    // Generation 0, formatted from its own task before the workload runs.
    mk::Task* gen0 = SpawnFs();
    kernel_.CreateThread(gen0, "mkfs", [this](mk::Env& env) {
      ASSERT_EQ(fs_->Format(env), base::Status::kOk);
    });
    mgr_->Supervise(kFsName, gen0, [this](mk::Env&) {
      mk::Task* task = SpawnFs();
      auto right =
          kernel_.MakeSendRight(*task, servers_.back()->receive_port(), *mgr_task_);
      EXPECT_TRUE(right.ok());
      return mks::RestartManager::Respawned{task, right.ok() ? *right : mk::kNullPort};
    });
  }

  // The physical file system and its cache live OUTSIDE the server task: the
  // simulated disk is the durable state a respawned server recovers from.
  mk::Task* SpawnFs() {
    const uint64_t gen = static_cast<uint64_t>(servers_.size());
    mk::Task* task = kernel_.CreateTask("file-server-g" + std::to_string(gen));
    // A fresh handle base per generation: stale handles from the crashed
    // instance can never alias a live one.
    auto server = std::make_unique<FileServer>(kernel_, task, gen * 1'000'000 + 1);
    EXPECT_EQ(server->AddMount("/", fs_.get()), base::Status::kOk);
    servers_.push_back(std::move(server));
    return task;
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<InodeFs> fs_;
  mk::Task* ns_task_;
  std::unique_ptr<mks::NameServer> ns_;
  mk::Task* mgr_task_;
  std::unique_ptr<mks::RestartManager> mgr_;
  mk::Task* client_task_;
  mk::PortName ns_for_client_ = mk::kNullPort;
  std::vector<std::unique_ptr<FileServer>> servers_;
};

TEST_F(FaultE2eTest, InjectedCrashesAreInvisibleToRobustClient) {
  const uint64_t seed = CampaignSeed();
  kernel_.faults().Enable(seed);
  // ~120 handler entries at 10% with a cap of 2 crashes: virtually every
  // seed fires at least once, no seed can exceed the restart budget.
  kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                       mk::fault::FaultMode::kCrashTask, 10, /*max_fires=*/2);

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    mks::NameClient nc(ns_for_client_);
    auto right =
        kernel_.MakeSendRight(*servers_[0]->task(), servers_[0]->receive_port(), *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kFsName, *right), base::Status::kOk);

    RobustFsSession session(ns_for_client_, kFsName);
    auto handle = session.Open(env, "/campaign.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok()) << base::StatusName(handle.status());
    for (uint32_t i = 0; i < 40; ++i) {
      char block[64];
      std::memset(block, 0, sizeof(block));
      std::snprintf(block, sizeof(block), "record %u of the campaign", i);
      auto wrote = session.Write(env, *handle, i * sizeof(block), block, sizeof(block));
      ASSERT_TRUE(wrote.ok()) << "write " << i << ": " << base::StatusName(wrote.status());
      ASSERT_EQ(*wrote, sizeof(block));
      char back[64] = {};
      auto got = session.Read(env, *handle, i * sizeof(block), back, sizeof(back));
      ASSERT_TRUE(got.ok()) << "read " << i << ": " << base::StatusName(got.status());
      ASSERT_EQ(*got, sizeof(block));
      EXPECT_STREQ(back, block) << "data must survive server crashes (it lives on the disk)";
    }
    ASSERT_EQ(session.Close(env, *handle), base::Status::kOk);

    // Orderly shutdown of whatever generation is serving now.
    kernel_.faults().DisarmAll();
    servers_.back()->Stop();
    RobustFsSession fin(ns_for_client_, kFsName);
    (void)fin.Open(env, "/campaign.dat", 0);  // unblock the serve loop
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);

  // The recovery bookkeeping must line up exactly: one restart per injected
  // crash, all of them visible in the exported metrics.
  const uint64_t crashes =
      kernel_.faults().fires(mk::fault::FaultPoint::kServerHandlerEntry);
  EXPECT_EQ(kernel_.faults().total_fires(), crashes);
  EXPECT_EQ(mgr_->total_restarts(), crashes);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("restart.total"), crashes);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("mk.task_deaths"), crashes);
  EXPECT_EQ(servers_.size(), 1 + crashes);
  EXPECT_FALSE(mgr_->degraded(kFsName));
  if (seed == 1) {
    EXPECT_GT(crashes, 0u) << "the default campaign must actually crash the server";
  }
  std::ostringstream metrics;
  mk::trace::WriteMetricsJson(metrics, kernel_);
  if (crashes > 0) {
    EXPECT_NE(metrics.str().find("restart.total"), std::string::npos);
    EXPECT_NE(metrics.str().find("fault.fired"), std::string::npos);
  }
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// The same crash campaign with the client-side cache ENABLED: write-behind,
// read-ahead and the attribute cache must stay coherent across server
// respawns — the restart manager's death notice bumps the cache generation,
// and the robust re-open path bumps it again on its own.
TEST_F(FaultE2eTest, InjectedCrashesAreInvisibleToCachedRobustClient) {
  const uint64_t seed = CampaignSeed();
  kernel_.faults().Enable(seed);
  kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                       mk::fault::FaultMode::kCrashTask, 10, /*max_fires=*/2);

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    mks::NameClient nc(ns_for_client_);
    auto right =
        kernel_.MakeSendRight(*servers_[0]->task(), servers_[0]->receive_port(), *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kFsName, *right), base::Status::kOk);

    RobustFsSession session(ns_for_client_, kFsName);
    session.EnableCache();
    // Death notices reach the cache the way a real client would wire it: the
    // restart manager fans out to every registered listener before respawn.
    mgr_->AddDeathListener([&session](const std::string& name) {
      if (name == kFsName) {
        session.OnServerDeath();
      }
    });

    auto handle = session.Open(env, "/cached-campaign.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok()) << base::StatusName(handle.status());
    for (uint32_t i = 0; i < 40; ++i) {
      char block[64];
      std::memset(block, 0, sizeof(block));
      std::snprintf(block, sizeof(block), "record %u of the campaign", i);
      auto wrote = session.Write(env, *handle, i * sizeof(block), block, sizeof(block));
      ASSERT_TRUE(wrote.ok()) << "write " << i << ": " << base::StatusName(wrote.status());
      ASSERT_EQ(*wrote, sizeof(block));
      char back[64] = {};
      auto got = session.Read(env, *handle, i * sizeof(block), back, sizeof(back));
      ASSERT_TRUE(got.ok()) << "read " << i << ": " << base::StatusName(got.status());
      ASSERT_EQ(*got, sizeof(block));
      EXPECT_STREQ(back, block) << "cached reads must match what survived on disk";
    }
    // Sequential re-read: one read-ahead fetch serves (almost) the whole
    // file; a crash mid-pass costs at most a couple of refetches.
    for (uint32_t i = 0; i < 40; ++i) {
      char expect[64];
      std::memset(expect, 0, sizeof(expect));
      std::snprintf(expect, sizeof(expect), "record %u of the campaign", i);
      char back[64] = {};
      auto got = session.Read(env, *handle, i * sizeof(back), back, sizeof(back));
      ASSERT_TRUE(got.ok()) << "re-read " << i << ": " << base::StatusName(got.status());
      ASSERT_EQ(*got, sizeof(back));
      EXPECT_STREQ(back, expect);
    }
    ASSERT_EQ(session.Close(env, *handle), base::Status::kOk);

    kernel_.faults().DisarmAll();
    servers_.back()->Stop();
    RobustFsSession fin(ns_for_client_, kFsName);
    (void)fin.Open(env, "/cached-campaign.dat", 0);  // unblock the serve loop
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);

  const uint64_t crashes =
      kernel_.faults().fires(mk::fault::FaultPoint::kServerHandlerEntry);
  EXPECT_EQ(mgr_->total_restarts(), crashes);
  EXPECT_FALSE(mgr_->degraded(kFsName));
  // At most 1 cold miss + a couple of crash-induced refetches in the 40-read
  // second pass: the bulk must have been served client-side.
  EXPECT_GE(kernel_.tracer().metrics().Counter("mk.fs.cache.hits"), 30u);
  if (seed == 1) {
    EXPECT_GT(crashes, 0u) << "the default campaign must actually crash the server";
  }
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

TEST_F(FaultE2eTest, BulkOolWritesSurviveMessageCopyFaults) {
  // Large payloads ride the OOL path through RobustFsSession while the
  // injector fails message transfers with kBusy at kMessageCopy. The retry
  // loop must re-arm the bulk descriptor each attempt so every record still
  // round-trips bit-exact.
  const uint64_t seed = CampaignSeed();
  kernel_.faults().Enable(seed);

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    mks::NameClient nc(ns_for_client_);
    auto right =
        kernel_.MakeSendRight(*servers_[0]->task(), servers_[0]->receive_port(), *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kFsName, *right), base::Status::kOk);

    // Armed only for the robust-session workload: kMessageCopy hits EVERY
    // RPC, and the one-shot Register above has no retry loop to absorb it.
    // max_fires below the robust retry budget (4 attempts): even if every
    // fire lands on the same call, the session still succeeds for ANY seed.
    kernel_.faults().Arm(mk::fault::FaultPoint::kMessageCopy,
                         mk::fault::FaultMode::kTransientError, 15, /*max_fires=*/3);

    RobustFsSession session(ns_for_client_, kFsName);
    auto handle = session.Open(env, "/bulk-campaign.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok()) << base::StatusName(handle.status());
    constexpr uint32_t kBlock = 8 * 1024;  // every record moves out-of-line
    std::vector<uint8_t> block(kBlock);
    std::vector<uint8_t> back(kBlock);
    // 8 records x 8 KB = 64 KB: inside the HPFS per-file limit (12 direct +
    // 128 indirect blocks), every record past the OOL threshold.
    for (uint32_t i = 0; i < 8; ++i) {
      for (uint32_t j = 0; j < kBlock; ++j) {
        block[j] = static_cast<uint8_t>((i * 31 + j) % 251);
      }
      auto wrote = session.Write(env, *handle, i * kBlock, block.data(), kBlock);
      ASSERT_TRUE(wrote.ok()) << "write " << i << ": " << base::StatusName(wrote.status());
      ASSERT_EQ(*wrote, kBlock);
      std::fill(back.begin(), back.end(), 0);
      auto got = session.Read(env, *handle, i * kBlock, back.data(), kBlock);
      ASSERT_TRUE(got.ok()) << "read " << i << ": " << base::StatusName(got.status());
      ASSERT_EQ(*got, kBlock);
      EXPECT_EQ(back, block) << "bulk data must survive transfer faults intact";
    }
    ASSERT_EQ(session.Close(env, *handle), base::Status::kOk);

    kernel_.faults().DisarmAll();
    servers_.back()->Stop();
    RobustFsSession fin(ns_for_client_, kFsName);
    (void)fin.Open(env, "/bulk-campaign.dat", 0);  // unblock the serve loop
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(kernel_.tracer().metrics().Counter("mk.rpc.ool_transfers"), 0u);
  if (seed == 1) {
    EXPECT_GT(kernel_.faults().fires(mk::fault::FaultPoint::kMessageCopy), 0u)
        << "the default campaign must actually hit the transfer fault";
  }
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace svc
