#include <gtest/gtest.h>

#include "src/svc/fs/fat.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

// Full stack fixture: disk -> block cache -> HPFS + FAT -> file server; a
// separate client task talks to it over RPC.
class FileServerTest : public mk::KernelTest {
 protected:
  FileServerTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 256 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 1024);
    hpfs_ = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);
    // FAT occupies a second region of the disk via a second cache window; to
    // keep the fixture simple it gets its own disk.
    fat_disk_ = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("d2", 4)));
    fat_store_ = std::make_unique<mks::BackdoorBlockStore>(fat_disk_, 10'000);
    fat_cache_ = std::make_unique<BlockCache>(kernel_, fat_store_.get(), 256);
    fat_ = std::make_unique<FatFs>(kernel_, fat_cache_.get(), 8192);

    fs_task_ = kernel_.CreateTask("file-server");
    server_ = std::make_unique<FileServer>(kernel_, fs_task_);
    EXPECT_EQ(server_->AddMount("/", hpfs_.get()), base::Status::kOk);
    EXPECT_EQ(server_->AddMount("/fat", fat_.get()), base::Status::kOk);
    client_task_ = kernel_.CreateTask("client");
    service_ = server_->GrantTo(*client_task_);

    // Format both file systems from a setup thread before the tests run.
    kernel_.CreateThread(fs_task_, "mkfs", [this](mk::Env& env) {
      ASSERT_EQ(hpfs_->Format(env), base::Status::kOk);
      ASSERT_EQ(fat_->Format(env), base::Status::kOk);
    });
  }

  // Runs the client body, then stops the server cleanly.
  void RunClient(std::function<void(mk::Env&, FsClient&)> body) {
    kernel_.CreateThread(client_task_, "client", [this, body](mk::Env& env) {
      FsClient fs(service_);
      body(env, fs);
      server_->Stop();
      (void)fs.Sync(env);  // unblock the server loop
    });
    ASSERT_EQ(kernel_.Run(), 0u);
  }

  hw::Disk* disk_;
  hw::Disk* fat_disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<mks::BackdoorBlockStore> fat_store_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<BlockCache> fat_cache_;
  std::unique_ptr<HpfsFs> hpfs_;
  std::unique_ptr<FatFs> fat_;
  mk::Task* fs_task_;
  std::unique_ptr<FileServer> server_;
  mk::Task* client_task_;
  mk::PortName service_;
};

TEST_F(FileServerTest, CreateWriteReadThroughRpc) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto handle = fs.Open(env, "/docs.txt", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok());
    const char msg[] = "through the file server";
    auto wrote = fs.Write(env, *handle, 0, msg, sizeof(msg));
    ASSERT_TRUE(wrote.ok());
    char out[64] = {};
    auto got = fs.Read(env, *handle, 0, out, sizeof(out));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sizeof(msg));
    EXPECT_STREQ(out, msg);
    ASSERT_EQ(fs.Close(env, *handle), base::Status::kOk);
    auto attr = fs.GetAttr(env, "/docs.txt");
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, sizeof(msg));
  });
}

TEST_F(FileServerTest, SingleRootedTreeSpansFileSystems) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    // HPFS side: long names fine.
    ASSERT_EQ(fs.Mkdir(env, "/projects"), base::Status::kOk);
    auto h1 = fs.Open(env, "/projects/A Long Report.doc", kFsCreate | kFsWrite);
    ASSERT_TRUE(h1.ok());
    ASSERT_EQ(fs.Close(env, *h1), base::Status::kOk);
    // FAT side: the same tree, but 8.3 rules apply beneath /fat.
    auto h2 = fs.Open(env, "/fat/NOTES.TXT", kFsCreate | kFsWrite);
    ASSERT_TRUE(h2.ok());
    ASSERT_EQ(fs.Close(env, *h2), base::Status::kOk);
    EXPECT_EQ(fs.Open(env, "/fat/A Long Report.doc", kFsCreate | kFsWrite).status(),
              base::Status::kNotSupported)
        << "the FAT long-name incompatibility must surface through the server";
    auto entries = fs.ReadDir(env, "/fat");
    ASSERT_TRUE(entries.ok());
    ASSERT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0].name, "NOTES.TXT");
  });
}

TEST_F(FileServerTest, DenyModesEnforceOs2Sharing) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto writer = fs.Open(env, "/shared.dat", kFsCreate | kFsWrite, FsShare::kDenyWrite);
    ASSERT_TRUE(writer.ok());
    // A second writer violates deny-write.
    EXPECT_EQ(fs.Open(env, "/shared.dat", kFsWrite).status(), base::Status::kBusy);
    // A reader is fine.
    auto reader = fs.Open(env, "/shared.dat", 0);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(fs.Close(env, *reader), base::Status::kOk);
    // Deny-all blocks even readers.
    ASSERT_EQ(fs.Close(env, *writer), base::Status::kOk);
    auto exclusive = fs.Open(env, "/shared.dat", 0, FsShare::kDenyAll);
    ASSERT_TRUE(exclusive.ok());
    EXPECT_EQ(fs.Open(env, "/shared.dat", 0).status(), base::Status::kBusy);
    ASSERT_EQ(fs.Close(env, *exclusive), base::Status::kOk);
  });
}

TEST_F(FileServerTest, DeleteOnCloseRemovesFile) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/temp.$$$", kFsCreate | kFsWrite | kFsDeleteOnClose);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(fs.Write(env, *h, 0, "x", 1).ok());
    EXPECT_TRUE(fs.GetAttr(env, "/temp.$$$").ok());
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    EXPECT_EQ(fs.GetAttr(env, "/temp.$$$").status(), base::Status::kNotFound);
  });
}

TEST_F(FileServerTest, AppendModeWritesAtEof) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/log.txt", kFsCreate | kFsWrite | kFsAppend);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(fs.Write(env, *h, /*offset=*/0, "aaaa", 4).ok());
    // Offset is ignored in append mode: this lands at EOF, not at 0.
    ASSERT_TRUE(fs.Write(env, *h, /*offset=*/0, "bbbb", 4).ok());
    char out[16] = {};
    auto got = fs.Read(env, *h, 0, out, sizeof(out));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 8u);
    EXPECT_EQ(std::string(out, 8), "aaaabbbb");
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
  });
}

TEST_F(FileServerTest, ByteRangeLocksConflict) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h1 = fs.Open(env, "/db.dat", kFsCreate | kFsWrite);
    auto h2 = fs.Open(env, "/db.dat", kFsWrite);
    ASSERT_TRUE(h1.ok());
    ASSERT_TRUE(h2.ok());
    ASSERT_EQ(fs.Lock(env, *h1, 0, 100, /*exclusive=*/true), base::Status::kOk);
    EXPECT_EQ(fs.Lock(env, *h2, 50, 100, true), base::Status::kBusy);
    EXPECT_EQ(fs.Lock(env, *h2, 100, 100, true), base::Status::kOk);  // disjoint
    // A write into the foreign locked range is refused.
    EXPECT_EQ(fs.Write(env, *h2, 10, "zz", 2).status(), base::Status::kBusy);
    // Unlock releases the conflict.
    ASSERT_EQ(fs.Unlock(env, *h1, 0, 100), base::Status::kOk);
    EXPECT_TRUE(fs.Write(env, *h2, 10, "zz", 2).ok());
    ASSERT_EQ(fs.Close(env, *h1), base::Status::kOk);
    ASSERT_EQ(fs.Close(env, *h2), base::Status::kOk);
  });
}

TEST_F(FileServerTest, CaseInsensitiveFlagOverCaseSensitiveStore) {
  // Mount a JFS (case-sensitive) and open with the OS/2 flag.
  auto jfs_disk = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("d3", 5)));
  auto jfs_store = std::make_unique<mks::BackdoorBlockStore>(jfs_disk, 10'000);
  auto jfs_cache = std::make_unique<BlockCache>(kernel_, jfs_store.get(), 256);
  auto jfs = std::make_unique<JfsFs>(kernel_, jfs_cache.get(), 16384);
  ASSERT_EQ(server_->AddMount("/unix", jfs.get()), base::Status::kOk);
  bool formatted = false;
  kernel_.CreateThread(fs_task_, "mkfs2", [&](mk::Env& env) {
    ASSERT_EQ(jfs->Format(env), base::Status::kOk);
    formatted = true;
  });
  RunClient([&](mk::Env& env, FsClient& fs) {
    while (!formatted) {
      env.SleepNs(100'000);  // mkfs blocks on device latency; wait it out
    }
    auto h = fs.Open(env, "/unix/ReadMe.MD", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    // Exact case: plain open works.
    EXPECT_TRUE(fs.Open(env, "/unix/ReadMe.MD").ok());
    // Wrong case without the flag: not found (UNIX semantics).
    EXPECT_EQ(fs.Open(env, "/unix/readme.md").status(), base::Status::kNotFound);
    // Wrong case with the OS/2 case-insensitive flag: the server's union
    // semantics scan finds it.
    auto ci = fs.Open(env, "/unix/readme.md", kFsCaseInsensitive);
    EXPECT_TRUE(ci.ok());
  });
}

TEST_F(FileServerTest, UnlinkOpenFileIsBusy) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/held.txt", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(fs.Unlink(env, "/held.txt"), base::Status::kBusy);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    EXPECT_EQ(fs.Unlink(env, "/held.txt"), base::Status::kOk);
  });
}

TEST_F(FileServerTest, RenameAndEasThroughServer) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/before.txt", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(fs.Write(env, *h, 0, "data", 4).ok());
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    ASSERT_EQ(fs.SetEa(env, "/before.txt", ".TYPE", "Text"), base::Status::kOk);
    ASSERT_EQ(fs.Rename(env, "/before.txt", "/after.txt"), base::Status::kOk);
    EXPECT_EQ(fs.GetAttr(env, "/before.txt").status(), base::Status::kNotFound);
    auto ea = fs.GetEa(env, "/after.txt", ".TYPE");
    ASSERT_TRUE(ea.ok());
    EXPECT_EQ(*ea, "Text") << "EAs travel with the file across rename";
  });
}

TEST_F(FileServerTest, LargeIoRoundTripsOutOfLine) {
  // Well above the OOL threshold: a 64 KB write and read-back must arrive
  // intact and must have moved by reference, not by the inline copy loop.
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/bulk.bin", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    std::vector<uint8_t> data(64 * 1024);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i % 251);
    }
    const uint64_t ool0 = kernel_.tracer().metrics().Counter("mk.rpc.ool_transfers");
    auto wrote = fs.Write(env, *h, 0, data.data(), static_cast<uint32_t>(data.size()));
    ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, data.size());
    std::vector<uint8_t> back(data.size());
    auto got = fs.Read(env, *h, 0, back.data(), static_cast<uint32_t>(back.size()));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, data.size());
    EXPECT_EQ(back, data);
    // Write request + read reply: at least two OOL transfers.
    EXPECT_GE(kernel_.tracer().metrics().Counter("mk.rpc.ool_transfers") - ool0, 2u);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
  });
}

TEST_F(FileServerTest, ScatterReadGatherWrite) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/vec.bin", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    // Gather-write three extents in one RPC, deliberately out of file order.
    std::vector<uint8_t> a(4096, 0xaa), b(4096, 0xbb), c(1000, 0xcc);
    FsWriteExtent wr[3] = {
        {8192, c.data(), static_cast<uint32_t>(c.size())},
        {0, a.data(), static_cast<uint32_t>(a.size())},
        {4096, b.data(), static_cast<uint32_t>(b.size())},
    };
    auto wrote = fs.WriteV(env, *h, wr, 3);
    ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, a.size() + b.size() + c.size());
    // Scatter-read them back with different extent boundaries.
    std::vector<uint8_t> r1(2048), r2(6144), r3(1000);
    FsReadExtent rd[3] = {
        {0, r1.data(), static_cast<uint32_t>(r1.size())},
        {2048, r2.data(), static_cast<uint32_t>(r2.size())},
        {8192, r3.data(), static_cast<uint32_t>(r3.size())},
    };
    auto got = fs.ReadV(env, *h, rd, 3);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, r1.size() + r2.size() + r3.size());
    EXPECT_EQ(r1[0], 0xaa);
    EXPECT_EQ(r2[0], 0xaa);        // 2048..4095 still the first extent
    EXPECT_EQ(r2[2048], 0xbb);     // file offset 4096
    EXPECT_EQ(r3[999], 0xcc);
    // A short final extent stops the scatter at EOF.
    std::vector<uint8_t> tail(4096);
    FsReadExtent rd2[2] = {
        {8192, tail.data(), static_cast<uint32_t>(tail.size())},
        {16384, tail.data(), static_cast<uint32_t>(tail.size())},
    };
    auto short_got = fs.ReadV(env, *h, rd2, 2);
    ASSERT_TRUE(short_got.ok());
    EXPECT_EQ(*short_got, 1000u);
    // Bounds: too many extents is rejected client-side.
    EXPECT_EQ(fs.ReadV(env, *h, rd, kFsMaxExtents + 1).status(),
              base::Status::kInvalidArgument);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
  });
}

TEST_F(FileServerTest, OversizedEaIsInvalidArgument) {
  // Regression: key+value beyond the fixed path2 buffer used to be built
  // into the request unchecked. The client must refuse it outright.
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/ea-host.txt", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    const std::string big_value(200, 'v');  // key+value+NULs > kFsMaxPath
    EXPECT_EQ(fs.SetEa(env, "/ea-host.txt", ".TYPE", big_value),
              base::Status::kInvalidArgument);
    const std::string big_key(180, 'k');
    EXPECT_EQ(fs.SetEa(env, "/ea-host.txt", big_key, "x"),
              base::Status::kInvalidArgument);
    // Wire-legal but beyond the PFS's 48-byte EA slot: the *file system*
    // reports capacity (kTooLarge), distinct from wire-protocol validation.
    EXPECT_EQ(fs.SetEa(env, "/ea-host.txt", ".TYPE", std::string(100, 'v')),
              base::Status::kTooLarge);
    // A storable EA still round-trips.
    EXPECT_EQ(fs.SetEa(env, "/ea-host.txt", ".TYPE", "Plain Text"), base::Status::kOk);
    auto back = fs.GetEa(env, "/ea-host.txt", ".TYPE");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "Plain Text");
  });
}

TEST_F(FileServerTest, HandleStatReturnsAttrsWithoutPathWalk) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/stat-me.txt", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    char payload[300] = {};
    ASSERT_TRUE(fs.Write(env, *h, 0, payload, sizeof(payload)).ok());
    auto attr = fs.Stat(env, *h);
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, sizeof(payload));
    EXPECT_FALSE(attr->directory);
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    // A closed (stale) handle answers kInvalidArgument — the signal the
    // robust session re-opens on, never a crash on an empty path.
    EXPECT_EQ(fs.Stat(env, *h).status(), base::Status::kInvalidArgument);
  });
}

TEST_F(FileServerTest, EaOnFatIsNotSupported) {
  RunClient([&](mk::Env& env, FsClient& fs) {
    auto h = fs.Open(env, "/fat/PLAIN.TXT", kFsCreate | kFsWrite);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(fs.Close(env, *h), base::Status::kOk);
    EXPECT_EQ(fs.SetEa(env, "/fat/PLAIN.TXT", ".TYPE", "Text"),
              base::Status::kNotSupported)
        << "the on-disk format limits the logical processing (paper, Semantics)";
  });
}

}  // namespace
}  // namespace svc
