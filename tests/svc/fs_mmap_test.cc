// File-backed memory objects end to end at the service level: the file
// server's pager port (FileServer::EnableMapping) exports a VmObject per
// mapped file, the kernel fault path pages it in with readahead, and the
// write paths keep mapped views and read()/write() views coherent.
//
// The differential tests here are deliberate byte-for-byte comparisons:
// every range observed through a mapping must equal the same range observed
// through FsClient::Read, across page boundaries, at EOF, and in the short
// final page — with the client cache off and on.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/mks/pager/default_pager.h"
#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

class FsMmapTest : public mk::KernelTest {
 protected:
  FsMmapTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    block_cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 1024);
    jfs_ = std::make_unique<JfsFs>(kernel_, block_cache_.get(), 65536);
    fs_task_ = kernel_.CreateTask("file-server");
    fs_ = std::make_unique<FileServer>(kernel_, fs_task_);
    fs_->EnableMapping();
    EXPECT_EQ(fs_->AddMount("/", jfs_.get()), base::Status::kOk);
    kernel_.CreateThread(fs_task_, "mkfs",
                         [this](mk::Env& env) { ASSERT_EQ(jfs_->Format(env), base::Status::kOk); });
    client_task_ = kernel_.CreateTask("client");
  }

  void StopFs(mk::Env& env) {
    fs_->Stop();
    FsClient unblock(fs_->GrantTo(*client_task_));
    (void)unblock.Sync(env);
  }

  // Deterministic content: byte i of the file is a function of i alone.
  static uint8_t PatternByte(uint64_t i) { return static_cast<uint8_t>(i * 131 + 17); }

  void WritePattern(mk::Env& env, FsClient& fs, uint64_t handle, uint64_t size) {
    std::vector<uint8_t> data(size);
    for (uint64_t i = 0; i < size; ++i) {
      data[i] = PatternByte(i);
    }
    auto wrote = fs.Write(env, handle, 0, data.data(), static_cast<uint32_t>(size));
    ASSERT_TRUE(wrote.ok());
    ASSERT_EQ(*wrote, size);
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<JfsFs> jfs_;
  mk::Task* fs_task_;
  std::unique_ptr<FileServer> fs_;
  mk::Task* client_task_;
};

// Size chosen so the file spans two full pages plus a short final page:
// boundary crossings and the EOF tail are all inside the comparison.
constexpr uint64_t kOddSize = 2 * hw::kPageSize + 1337;

void CompareMappedToRead(mk::Env& env, mk::Kernel& kernel, mk::Task& task, FsClient& fs,
                         uint64_t handle, hw::VirtAddr base, uint64_t file_size) {
  // Ranges: within a page, crossing each boundary, the EOF tail, whole file.
  const std::pair<uint64_t, uint64_t> ranges[] = {
      {0, 64},
      {hw::kPageSize - 32, 64},            // first boundary
      {2 * hw::kPageSize - 1, 2},          // second boundary
      {2 * hw::kPageSize, 1337},           // entire short final page
      {file_size - 5, 5},                  // EOF tail
      {0, file_size},                      // everything
  };
  for (const auto& [off, len] : ranges) {
    std::vector<uint8_t> via_map(len, 0xAA);
    std::vector<uint8_t> via_read(len, 0x55);
    ASSERT_EQ(kernel.CopyIn(task, base + off, via_map.data(), len), base::Status::kOk);
    auto got = fs.Read(env, handle, off, via_read.data(), static_cast<uint32_t>(len));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, len);
    EXPECT_EQ(via_map, via_read) << "mapped and read() bytes diverge at offset " << off
                                 << " len " << len;
  }
  // Past EOF but inside the mapping: read() has no bytes there, the mapping
  // must show zeros (never stale or junk bytes).
  uint8_t past_eof[16];
  ASSERT_EQ(kernel.CopyIn(task, base + file_size, past_eof, sizeof(past_eof)), base::Status::kOk);
  for (uint8_t b : past_eof) {
    EXPECT_EQ(b, 0) << "bytes past EOF must map in as zeros";
  }
}

class FsMmapDifferentialTest : public FsMmapTest,
                               public ::testing::WithParamInterface<bool> {};

TEST_P(FsMmapDifferentialTest, MappedBytesMatchReadAcrossBoundariesAndEof) {
  const bool cache_on = GetParam();
  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    FsClient fs(fs_->GrantTo(*client_task_));
    if (cache_on) {
      fs.EnableCache();
    }
    auto handle = fs.Open(env, "/map.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok());
    WritePattern(env, fs, *handle, kOddSize);
    auto mapping = fs.MapObject(env, *handle);
    ASSERT_TRUE(mapping.ok());
    EXPECT_EQ(mapping->size, kOddSize);
    auto object = kernel_.LookupPagedObject(mapping->object_id);
    ASSERT_NE(object, nullptr);
    auto base = kernel_.VmMapObject(*client_task_, object, 0, object->size(),
                                    mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base.ok());
    CompareMappedToRead(env, kernel_, *client_task_, fs, *handle, *base, kOddSize);
    ASSERT_EQ(kernel_.VmDeallocate(*client_task_, *base, object->size()), base::Status::kOk);
    auto remaining = fs.UnmapObject(env, mapping->object_id);
    ASSERT_TRUE(remaining.ok());
    EXPECT_EQ(*remaining, 0u);
    ASSERT_EQ(kernel_.ReleasePagedObject(mapping->object_id), base::Status::kOk);
    EXPECT_EQ(fs_->mapped_objects(), 0u);
    ASSERT_EQ(fs.Close(env, *handle), base::Status::kOk);
    StopFs(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

INSTANTIATE_TEST_SUITE_P(CacheOffAndOn, FsMmapDifferentialTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FsCacheOn" : "FsCacheOff";
                         });

TEST_F(FsMmapTest, MapObjectIsSharedPerNodeAndRefCounted) {
  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    FsClient fs(fs_->GrantTo(*client_task_));
    auto h1 = fs.Open(env, "/shared.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(h1.ok());
    WritePattern(env, fs, *h1, hw::kPageSize);
    auto h2 = fs.Open(env, "/shared.dat", kFsWrite);
    ASSERT_TRUE(h2.ok());
    // Two opens of one node share one memory object — that sharing is what
    // makes two mappings of the same file coherent with each other.
    auto m1 = fs.MapObject(env, *h1);
    auto m2 = fs.MapObject(env, *h2);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    EXPECT_EQ(m1->object_id, m2->object_id);
    EXPECT_EQ(fs_->mapped_objects(), 1u);
    auto r1 = fs.UnmapObject(env, m1->object_id);
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(*r1, 1u);
    auto r2 = fs.UnmapObject(env, m1->object_id);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(*r2, 0u);
    // The server's bookkeeping lives until kObjectTerminate, which the
    // kernel only sends once the object was actually mapped (the setup
    // handshake ran). Map it, release, and the server entry goes away.
    auto object = kernel_.LookupPagedObject(m1->object_id);
    ASSERT_NE(object, nullptr);
    auto base = kernel_.VmMapObject(*client_task_, object, 0, object->size(),
                                    mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base.ok());
    ASSERT_EQ(kernel_.VmDeallocate(*client_task_, *base, object->size()), base::Status::kOk);
    ASSERT_EQ(kernel_.ReleasePagedObject(m1->object_id), base::Status::kOk);
    EXPECT_EQ(fs_->mapped_objects(), 0u);
    StopFs(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// Coherence, write() -> mapped read: a file write through the server drops
// overlapping *clean* mapped pages (they refault with the new bytes) but
// must never clobber a *dirty* mapped page — msync owns that page's fate.
TEST_F(FsMmapTest, FileWriteInvalidatesCleanButNotDirtyMappedPages) {
  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    FsClient fs(fs_->GrantTo(*client_task_));
    auto handle = fs.Open(env, "/coherent.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok());
    WritePattern(env, fs, *handle, 2 * hw::kPageSize);
    auto mapping = fs.MapObject(env, *handle);
    ASSERT_TRUE(mapping.ok());
    auto object = kernel_.LookupPagedObject(mapping->object_id);
    ASSERT_NE(object, nullptr);
    auto base = kernel_.VmMapObject(*client_task_, object, 0, object->size(),
                                    mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base.ok());
    // Fault page 0 in clean, dirty page 1 with a mapped store.
    uint8_t probe = 0;
    ASSERT_EQ(kernel_.CopyIn(*client_task_, *base, &probe, 1), base::Status::kOk);
    EXPECT_EQ(probe, PatternByte(0));
    const uint8_t store_byte = 0x5C;
    ASSERT_EQ(kernel_.CopyOut(*client_task_, *base + hw::kPageSize, &store_byte, 1),
              base::Status::kOk);
    EXPECT_EQ(object->dirty_pages(), 1u);
    // Overwrite both pages through the file API.
    std::vector<uint8_t> fresh(2 * hw::kPageSize, 0xEE);
    auto wrote = fs.Write(env, *handle, 0, fresh.data(), static_cast<uint32_t>(fresh.size()));
    ASSERT_TRUE(wrote.ok());
    // Page 0 was clean: it refaults and shows the new bytes.
    ASSERT_EQ(kernel_.CopyIn(*client_task_, *base, &probe, 1), base::Status::kOk);
    EXPECT_EQ(probe, 0xEE);
    // Page 1 was dirty: the mapped store survives the file write.
    ASSERT_EQ(kernel_.CopyIn(*client_task_, *base + hw::kPageSize, &probe, 1), base::Status::kOk);
    EXPECT_EQ(probe, 0x5C);
    StopFs(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// Coherence, mapped store -> read(): the kernel-level msync (VmMsync) pushes
// dirty pages through the pager's kDataWrite and the file then reads back
// the stored bytes; re-dirtying after mark-clean is caught by the
// write-protect fault and a second msync publishes the newer bytes.
TEST_F(FsMmapTest, KernelMsyncPublishesDirtyPagesToTheFile) {
  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    FsClient fs(fs_->GrantTo(*client_task_));
    auto handle = fs.Open(env, "/msync.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok());
    WritePattern(env, fs, *handle, 2 * hw::kPageSize);
    auto mapping = fs.MapObject(env, *handle);
    ASSERT_TRUE(mapping.ok());
    auto object = kernel_.LookupPagedObject(mapping->object_id);
    ASSERT_NE(object, nullptr);
    auto base = kernel_.VmMapObject(*client_task_, object, 0, object->size(),
                                    mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base.ok());
    const char tag[] = "mapped-store";
    ASSERT_EQ(kernel_.CopyOut(*client_task_, *base + 100, tag, sizeof(tag)), base::Status::kOk);
    EXPECT_EQ(object->dirty_pages(), 1u);
    ASSERT_EQ(kernel_.VmMsync(*client_task_, *base, object->size()), base::Status::kOk);
    EXPECT_EQ(object->dirty_pages(), 0u);
    EXPECT_GE(fs_->pageouts(), 1u);
    char file_bytes[sizeof(tag)] = {};
    auto got = fs.Read(env, *handle, 100, file_bytes, sizeof(tag));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(file_bytes, tag, sizeof(tag)), 0);
    // Store again after mark-clean: the page must re-dirty via a fresh
    // write fault, and a second msync must publish the newer bytes.
    const char tag2[] = "second-store";
    ASSERT_EQ(kernel_.CopyOut(*client_task_, *base + 100, tag2, sizeof(tag2)), base::Status::kOk);
    EXPECT_EQ(object->dirty_pages(), 1u);
    ASSERT_EQ(kernel_.VmMsync(*client_task_, *base, object->size()), base::Status::kOk);
    got = fs.Read(env, *handle, 100, file_bytes, sizeof(tag2));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(file_bytes, tag2, sizeof(tag2)), 0);
    StopFs(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// The point of the whole machinery: sequential mapped reads amortize one
// pager RPC over a readahead batch, where read() pays at least one RPC per
// uncached call.
TEST_F(FsMmapTest, MappedSequentialReadsUseFewerRpcsThanPerPageReads) {
  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    FsClient fs(fs_->GrantTo(*client_task_));
    // 16 pages = 64 KB, inside the inode-fs per-file limit (12 direct + 128
    // indirect sectors) while spanning two full readahead batches.
    constexpr uint64_t kPages = 16;
    auto handle = fs.Open(env, "/seq.dat", kFsCreate | kFsWrite);
    ASSERT_TRUE(handle.ok());
    std::vector<uint8_t> chunk(hw::kPageSize, 0x42);
    for (uint64_t p = 0; p < kPages; ++p) {
      ASSERT_TRUE(fs.Write(env, *handle, p * hw::kPageSize, chunk.data(),
                           static_cast<uint32_t>(chunk.size()))
                      .ok());
    }
    // Per-page read() pass.
    const uint64_t rpc0 = kernel_.rpc_calls();
    for (uint64_t p = 0; p < kPages; ++p) {
      ASSERT_TRUE(fs.Read(env, *handle, p * hw::kPageSize, chunk.data(),
                          static_cast<uint32_t>(chunk.size()))
                      .ok());
    }
    const uint64_t read_rpcs = kernel_.rpc_calls() - rpc0;
    // Mapped pass over the same pages.
    auto mapping = fs.MapObject(env, *handle);
    ASSERT_TRUE(mapping.ok());
    auto object = kernel_.LookupPagedObject(mapping->object_id);
    ASSERT_NE(object, nullptr);
    auto base = kernel_.VmMapObject(*client_task_, object, 0, object->size(),
                                    mk::Prot::kReadWrite, /*anywhere=*/true);
    ASSERT_TRUE(base.ok());
    const uint64_t rpc1 = kernel_.rpc_calls();
    for (uint64_t p = 0; p < kPages; ++p) {
      uint8_t b = 0;
      ASSERT_EQ(kernel_.CopyIn(*client_task_, *base + p * hw::kPageSize, &b, 1),
                base::Status::kOk);
      ASSERT_EQ(b, 0x42);
    }
    const uint64_t mapped_rpcs = kernel_.rpc_calls() - rpc1;
    EXPECT_GE(read_rpcs, kPages);
    EXPECT_LE(mapped_rpcs * 4, read_rpcs)
        << "readahead should amortize pager RPCs at least 4x below read()";
    StopFs(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

}  // namespace
}  // namespace svc
