#include <gtest/gtest.h>

#include "src/drv/nic_driver.h"
#include "src/svc/net/net_server.h"
#include "src/svc/net/stack.h"
#include "src/svc/registry.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

class NetTest : public mk::KernelTest {
 protected:
  // Builds nic -> driver -> net server (with the chosen engine) -> client.
  void Build(bool fine, bool wrappers) {
    nic_ = static_cast<hw::Nic*>(machine_.AddDevice(std::make_unique<hw::Nic>("nic0", 5)));
    driver_task_ = kernel_.CreateTask("nic-driver");
    driver_ = std::make_unique<drv::NicDriver>(kernel_, driver_task_, nic_, nullptr);
    net_task_ = kernel_.CreateTask("net-server");
    std::unique_ptr<StackEngine> engine;
    if (fine) {
      engine = std::make_unique<FineStack>(kernel_);
    } else {
      engine = std::make_unique<CoarseStack>(kernel_);
    }
    server_ = std::make_unique<NetServer>(kernel_, net_task_, driver_->GrantTo(*net_task_),
                                          std::move(engine), wrappers);
    client_task_ = kernel_.CreateTask("client");
    service_ = server_->GrantTo(*client_task_);
  }

  void RunClient(std::function<void(mk::Env&, NetClient&)> body) {
    kernel_.CreateThread(client_task_, "client", [this, body](mk::Env& env) {
      NetClient net(service_);
      body(env, net);
      server_->Stop();
      driver_->Stop();
      kernel_.TerminateTask(net_task_);
      kernel_.TerminateTask(driver_task_);
    });
    ASSERT_EQ(kernel_.Run(), 0u);
  }

  hw::Nic* nic_ = nullptr;
  mk::Task* driver_task_ = nullptr;
  std::unique_ptr<drv::NicDriver> driver_;
  mk::Task* net_task_ = nullptr;
  std::unique_ptr<NetServer> server_;
  mk::Task* client_task_ = nullptr;
  mk::PortName service_ = mk::kNullPort;
};

TEST_F(NetTest, DatagramLoopbackCoarse) {
  Build(/*fine=*/false, /*wrappers=*/false);
  RunClient([&](mk::Env& env, NetClient& net) {
    ASSERT_EQ(net.Bind(env, 9000), base::Status::kOk);
    const char msg[] = "udp-ish datagram";
    ASSERT_EQ(net.SendTo(env, 0x7f000001, 9000, 1234, msg, sizeof(msg)), base::Status::kOk);
    char out[64] = {};
    uint32_t from_addr = 0;
    uint16_t from_port = 0;
    auto len = net.RecvFrom(env, 9000, out, sizeof(out), &from_addr, &from_port);
    ASSERT_TRUE(len.ok());
    EXPECT_EQ(*len, sizeof(msg));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(from_port, 1234);
  });
  EXPECT_EQ(server_->datagrams_sent(), 1u);
  EXPECT_EQ(server_->datagrams_delivered(), 1u);
}

TEST_F(NetTest, DatagramLoopbackFineGrainedWithWrappers) {
  Build(/*fine=*/true, /*wrappers=*/true);
  RunClient([&](mk::Env& env, NetClient& net) {
    ASSERT_EQ(net.Bind(env, 7), base::Status::kOk);
    for (int i = 0; i < 3; ++i) {
      uint32_t payload = 100 + i;
      ASSERT_EQ(net.SendTo(env, 0x7f000001, 7, 7, &payload, sizeof(payload)),
                base::Status::kOk);
    }
    for (int i = 0; i < 3; ++i) {
      uint32_t payload = 0;
      auto len = net.RecvFrom(env, 7, &payload, sizeof(payload));
      ASSERT_TRUE(len.ok());
      EXPECT_EQ(payload, 100u + i) << "datagrams must arrive in order";
    }
  });
}

TEST_F(NetTest, BatchedSendDeliversAllDatagramsInOneRpc) {
  Build(/*fine=*/false, /*wrappers=*/false);
  RunClient([&](mk::Env& env, NetClient& net) {
    ASSERT_EQ(net.Bind(env, 9000), base::Status::kOk);
    // 8 full-size frames in one call: the combined ref payload is far above
    // the OOL threshold even though each frame alone is below it.
    constexpr uint32_t kCount = 8;
    std::vector<std::vector<uint8_t>> bodies;
    NetDgram headers[kCount];
    const void* payloads[kCount];
    for (uint32_t i = 0; i < kCount; ++i) {
      bodies.emplace_back(1024, static_cast<uint8_t>('a' + i));
      headers[i] = NetDgram{0x7f000001, 9000, 1234, 1024, 0};
      payloads[i] = bodies[i].data();
    }
    const uint64_t ool0 = kernel_.tracer().metrics().Counter("mk.rpc.ool_transfers");
    auto sent = net.SendToBatch(env, headers, payloads, kCount);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, kCount);
    EXPECT_GE(kernel_.tracer().metrics().Counter("mk.rpc.ool_transfers") - ool0, 1u)
        << "the batch must move out-of-line";
    for (uint32_t i = 0; i < kCount; ++i) {
      std::vector<uint8_t> out(2048);
      uint16_t from_port = 0;
      auto len = net.RecvFrom(env, 9000, out.data(), static_cast<uint32_t>(out.size()),
                              nullptr, &from_port);
      ASSERT_TRUE(len.ok());
      EXPECT_EQ(*len, 1024u);
      EXPECT_EQ(out[0], static_cast<uint8_t>('a' + i)) << "batch order preserved";
      EXPECT_EQ(from_port, 1234);
    }
    // Malformed batches are rejected.
    EXPECT_EQ(net.SendToBatch(env, headers, payloads, 0).status(),
              base::Status::kInvalidArgument);
  });
  EXPECT_EQ(server_->datagrams_sent(), 8u);
  EXPECT_EQ(server_->datagrams_delivered(), 8u);
}

TEST_F(NetTest, UnboundPortDropsSilently) {
  Build(false, false);
  RunClient([&](mk::Env& env, NetClient& net) {
    ASSERT_EQ(net.Bind(env, 1), base::Status::kOk);
    const char msg[] = "to nowhere";
    ASSERT_EQ(net.SendTo(env, 0x7f000001, 4242, 1, msg, sizeof(msg)), base::Status::kOk);
    // Give the frame time to loop back and be dropped.
    env.SleepNs(5'000'000);
    EXPECT_EQ(net.RecvFrom(env, 4242, nullptr, 0).status(), base::Status::kNotFound);
  });
  EXPECT_EQ(server_->datagrams_delivered(), 0u);
}

TEST_F(NetTest, DoubleBindRejected) {
  Build(false, false);
  RunClient([&](mk::Env& env, NetClient& net) {
    ASSERT_EQ(net.Bind(env, 5), base::Status::kOk);
    EXPECT_EQ(net.Bind(env, 5), base::Status::kAlreadyExists);
  });
}

TEST_F(NetTest, FineStackCostsMoreThanCoarse) {
  // Identical packet processing through both engines, measured directly (the
  // end-to-end ablation lives in bench_fine_objects, which controls for
  // scheduling noise): the fine-grained one must spend more instructions.
  mk::Task* task = kernel_.CreateTask("stack-bench");
  uint64_t fine_instr = 0;
  uint64_t coarse_instr = 0;
  kernel_.CreateThread(task, "t", [&](mk::Env& env) {
    FineStack fine(kernel_);
    CoarseStack coarse(kernel_);
    Datagram d;
    d.src_addr = 1;
    d.dst_addr = 2;
    d.src_port = 3;
    d.dst_port = 4;
    d.payload.assign(256, 0x55);
    auto measure = [&](StackEngine& engine) -> uint64_t {
      Datagram out;
      for (int i = 0; i < 5; ++i) {  // warm the engine's code paths
        auto frame = engine.Encapsulate(env, d);
        EXPECT_TRUE(engine.Decapsulate(env, frame.data(),
                                       static_cast<uint32_t>(frame.size()), &out));
      }
      const uint64_t i0 = kernel_.Counters().instructions;
      for (int i = 0; i < 50; ++i) {
        auto frame = engine.Encapsulate(env, d);
        EXPECT_TRUE(engine.Decapsulate(env, frame.data(),
                                       static_cast<uint32_t>(frame.size()), &out));
      }
      return kernel_.Counters().instructions - i0;
    };
    fine_instr = measure(fine);
    coarse_instr = measure(coarse);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(fine_instr, coarse_instr + coarse_instr / 4)
      << "fine-grained stack must be measurably slower";
}

class RegistryTest : public mk::KernelTest {};

TEST_F(RegistryTest, SetGetDeleteList) {
  mk::Task* reg_task = kernel_.CreateTask("registry");
  RegistryServer server(kernel_, reg_task);
  mk::Task* client = kernel_.CreateTask("client");
  mk::PortName service = server.GrantTo(*client);
  kernel_.CreateThread(client, "c", [&](mk::Env& env) {
    RegistryClient reg(service);
    ASSERT_EQ(reg.Set(env, "os2/shell", "pmshell.exe"), base::Status::kOk);
    ASSERT_EQ(reg.Set(env, "os2/swap", "on"), base::Status::kOk);
    ASSERT_EQ(reg.Set(env, "unix/shell", "/bin/sh"), base::Status::kOk);
    auto shell = reg.Get(env, "os2/shell");
    ASSERT_TRUE(shell.ok());
    EXPECT_EQ(*shell, "pmshell.exe");
    auto keys = reg.List(env, "os2");
    ASSERT_TRUE(keys.ok());
    EXPECT_EQ(keys->size(), 2u);
    ASSERT_EQ(reg.Delete(env, "os2/swap"), base::Status::kOk);
    EXPECT_EQ(reg.Get(env, "os2/swap").status(), base::Status::kNotFound);
    EXPECT_EQ(reg.Delete(env, "os2/swap"), base::Status::kNotFound);
    server.Stop();
    (void)reg.Get(env, "x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

}  // namespace
}  // namespace svc
