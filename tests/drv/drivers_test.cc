#include <gtest/gtest.h>

#include "src/drv/disk_driver.h"
#include "src/drv/nic_driver.h"
#include "src/drv/oo/ooddm.h"
#include "src/drv/resource_manager.h"
#include "tests/mk/kernel_test_fixture.h"

namespace drv {
namespace {

class ResourceManagerTest : public mk::KernelTest {
 protected:
  ResourceManager rm_{kernel_};
};

TEST_F(ResourceManagerTest, GrantAndOwnership) {
  const DriverId a = rm_.RegisterDriver("a");
  const ResourceId irq5{ResourceKind::kIrqLine, 5};
  ASSERT_EQ(rm_.DeclareResource(irq5, "irq 5"), base::Status::kOk);
  EXPECT_EQ(rm_.Request(a, irq5), base::Status::kOk);
  EXPECT_TRUE(rm_.Owns(a, irq5));
  EXPECT_EQ(*rm_.OwnerOf(irq5), a);
  // Idempotent re-request.
  EXPECT_EQ(rm_.Request(a, irq5), base::Status::kOk);
  EXPECT_EQ(rm_.grants(), 1u);
}

TEST_F(ResourceManagerTest, RequestUndeclaredFails) {
  const DriverId a = rm_.RegisterDriver("a");
  EXPECT_EQ(rm_.Request(a, {ResourceKind::kDmaChannel, 1}), base::Status::kNotFound);
}

TEST_F(ResourceManagerTest, OwnerDecliningKeepsRequesterPending) {
  const DriverId a = rm_.RegisterDriver("a");  // no yield handler: declines
  const DriverId b = rm_.RegisterDriver("b");
  const ResourceId io{ResourceKind::kIoWindow, 0x1000};
  ASSERT_EQ(rm_.DeclareResource(io, "regs"), base::Status::kOk);
  ASSERT_EQ(rm_.Request(a, io), base::Status::kOk);
  EXPECT_EQ(rm_.Request(b, io), base::Status::kBusy);
  EXPECT_TRUE(rm_.Owns(a, io));
  // When the owner yields, the pending request is granted.
  ASSERT_EQ(rm_.Yield(a, io), base::Status::kOk);
  EXPECT_TRUE(rm_.Owns(b, io));
}

TEST_F(ResourceManagerTest, CooperativeOwnerYieldsOnRequest) {
  int asked = 0;
  const DriverId a = rm_.RegisterDriver("a", [&](const ResourceId&) {
    ++asked;
    return true;  // polite driver: yields immediately
  });
  const DriverId b = rm_.RegisterDriver("b");
  const ResourceId dma{ResourceKind::kDmaChannel, 3};
  ASSERT_EQ(rm_.DeclareResource(dma, "dma 3"), base::Status::kOk);
  ASSERT_EQ(rm_.Request(a, dma), base::Status::kOk);
  EXPECT_EQ(rm_.Request(b, dma), base::Status::kOk);
  EXPECT_EQ(asked, 1);
  EXPECT_TRUE(rm_.Owns(b, dma));
  EXPECT_FALSE(rm_.Owns(a, dma));
}

TEST_F(ResourceManagerTest, YieldByNonOwnerDenied) {
  const DriverId a = rm_.RegisterDriver("a");
  const DriverId b = rm_.RegisterDriver("b");
  const ResourceId io{ResourceKind::kIoWindow, 0x2000};
  ASSERT_EQ(rm_.DeclareResource(io, "regs"), base::Status::kOk);
  ASSERT_EQ(rm_.Request(a, io), base::Status::kOk);
  EXPECT_EQ(rm_.Yield(b, io), base::Status::kPermissionDenied);
}

class DiskDriverTest : public mk::KernelTest {
 protected:
  DiskDriverTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("disk0", 3)));
    rm_ = std::make_unique<ResourceManager>(kernel_);
    driver_task_ = kernel_.CreateTask("disk-driver");
    driver_ = std::make_unique<DiskDriver>(kernel_, driver_task_, disk_, rm_.get());
    client_task_ = kernel_.CreateTask("client");
    service_ = driver_->GrantTo(*client_task_);
  }

  hw::Disk* disk_;
  std::unique_ptr<ResourceManager> rm_;
  mk::Task* driver_task_;
  std::unique_ptr<DiskDriver> driver_;
  mk::Task* client_task_;
  mk::PortName service_;
};

TEST_F(DiskDriverTest, ReadWriteThroughDriver) {
  std::vector<uint8_t> persisted(hw::Disk::kSectorSize);
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    RpcBlockStore store(service_, disk_->num_sectors());
    std::vector<uint8_t> data(hw::Disk::kSectorSize * 3, 0x42);
    data[0] = 0x01;
    data[data.size() - 1] = 0x99;
    ASSERT_EQ(store.Write(env, 10, 3, data.data()), base::Status::kOk);
    std::vector<uint8_t> back(data.size());
    ASSERT_EQ(store.Read(env, 10, 3, back.data()), base::Status::kOk);
    EXPECT_EQ(back, data);
    driver_->Stop();
    (void)store.Read(env, 0, 1, back.data());  // unblock the server loop
  });
  kernel_.Run();
  // Verify the data really reached the platter.
  disk_->ReadSectors(10, 1, persisted.data());
  EXPECT_EQ(persisted[0], 0x01);
  EXPECT_GT(driver_->interrupts_taken(), 0u) << "driver must run interrupt-driven";
  EXPECT_TRUE(rm_->Owns(1, {ResourceKind::kIrqLine, 3}));
}

TEST_F(DiskDriverTest, OutOfRangeRejected) {
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    RpcBlockStore store(service_, disk_->num_sectors());
    std::vector<uint8_t> buf(hw::Disk::kSectorSize);
    EXPECT_EQ(store.Read(env, disk_->num_sectors(), 1, buf.data()),
              base::Status::kInvalidArgument);
    driver_->Stop();
    (void)store.Read(env, 0, 1, buf.data());
  });
  kernel_.Run();
}

class NicDriverTest : public mk::KernelTest {
 protected:
  NicDriverTest() {
    nic_ = static_cast<hw::Nic*>(machine_.AddDevice(std::make_unique<hw::Nic>("nic0", 5)));
    driver_task_ = kernel_.CreateTask("nic-driver");
    driver_ = std::make_unique<NicDriver>(kernel_, driver_task_, nic_, nullptr);
    client_task_ = kernel_.CreateTask("client");
    service_ = driver_->GrantTo(*client_task_);
  }

  hw::Nic* nic_;
  mk::Task* driver_task_;
  std::unique_ptr<NicDriver> driver_;
  mk::Task* client_task_;
  mk::PortName service_;
};

TEST_F(NicDriverTest, LoopbackFrameThroughDriver) {
  std::vector<uint8_t> got;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NicClient nic(service_);
    std::vector<uint8_t> frame(128);
    for (size_t i = 0; i < frame.size(); ++i) {
      frame[i] = static_cast<uint8_t>(i * 3);
    }
    ASSERT_EQ(nic.Send(env, frame.data(), static_cast<uint32_t>(frame.size())),
              base::Status::kOk);
    std::vector<uint8_t> buf(2048);
    auto len = nic.Receive(env, buf.data(), static_cast<uint32_t>(buf.size()));
    ASSERT_TRUE(len.ok());
    got.assign(buf.begin(), buf.begin() + *len);
    EXPECT_EQ(got, frame);
    driver_->Stop();
    kernel_.TerminateTask(driver_task_);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(driver_->frames_tx(), 1u);
  EXPECT_EQ(driver_->frames_rx(), 1u);
}

class OoddmTest : public mk::KernelTest {};

TEST_F(OoddmTest, FineAndCoarseDriversReadSameData) {
  auto* disk = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("d", 3)));
  std::vector<uint8_t> content(hw::Disk::kSectorSize, 0x7e);
  disk->WriteSectors(5, 1, content.data());
  auto dma = machine_.mem().AllocContiguous(1);
  ASSERT_TRUE(dma.ok());
  mk::Task* task = kernel_.CreateTask("drv");
  std::vector<uint8_t> fine_out(hw::Disk::kSectorSize);
  std::vector<uint8_t> coarse_out(hw::Disk::kSectorSize);
  uint64_t fine_calls = 0;
  kernel_.CreateThread(task, "t", [&](mk::Env& env) {
    TDiskDrive fine(kernel_, disk, *dma);
    ASSERT_EQ(fine.ReadBlocks(env, 5, 1, fine_out.data()), base::Status::kOk);
    fine_calls = fine.virtual_calls();
    CoarseDiskDriver coarse(kernel_, disk, *dma);
    ASSERT_EQ(coarse.ReadBlocks(env, 5, 1, coarse_out.data()), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(fine_out, content);
  EXPECT_EQ(coarse_out, content);
  EXPECT_GT(fine_calls, 10u) << "fine-grained driver must dispatch many short virtuals";
}

TEST_F(OoddmTest, FineGrainedCostsMoreThanCoarse) {
  auto* disk = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("d", 3)));
  auto dma = machine_.mem().AllocContiguous(1);
  ASSERT_TRUE(dma.ok());
  mk::Task* task = kernel_.CreateTask("drv");
  uint64_t fine_cycles = 0;
  uint64_t coarse_cycles = 0;
  kernel_.CreateThread(task, "t", [&](mk::Env& env) {
    TDiskDrive fine(kernel_, disk, *dma);
    CoarseDiskDriver coarse(kernel_, disk, *dma);
    std::vector<uint8_t> buf(hw::Disk::kSectorSize);
    // Warm both paths, then compare the driver-side overhead. Disk time is
    // identical for both, so measure with the device time excluded by using
    // the same request repeatedly and diffing instructions instead.
    auto measure = [&](auto& driver) {
      for (int i = 0; i < 3; ++i) {
        (void)driver.ReadBlocks(env, 1, 1, buf.data());
      }
      const uint64_t i0 = kernel_.Counters().instructions;
      for (int i = 0; i < 10; ++i) {
        (void)driver.ReadBlocks(env, 1, 1, buf.data());
      }
      return kernel_.Counters().instructions - i0;
    };
    fine_cycles = measure(fine);
    coarse_cycles = measure(coarse);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(fine_cycles, coarse_cycles) << "fine-grained objects must execute more instructions";
}

}  // namespace
}  // namespace drv
