#include <gtest/gtest.h>

#include "src/baseline/monolithic.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace baseline {
namespace {

class MonolithicTest : public mk::KernelTest {
 protected:
  MonolithicTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    fb_dev_ = new hw::Framebuffer("fb0", &machine_, 640, 480);
    machine_.AddDevice(std::unique_ptr<hw::Device>(fb_dev_));
    store_ = std::make_unique<KernelDiskStore>(kernel_, disk_);
    cache_ = std::make_unique<svc::BlockCache>(kernel_, store_.get(), 1024);
    hpfs_ = std::make_unique<svc::HpfsFs>(kernel_, cache_.get(), 65536);
    os_ = std::make_unique<MonolithicOs>(kernel_, hpfs_.get(), fb_dev_);
  }

  hw::Disk* disk_;
  hw::Framebuffer* fb_dev_;
  std::unique_ptr<KernelDiskStore> store_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::HpfsFs> hpfs_;
  std::unique_ptr<MonolithicOs> os_;
};

TEST_F(MonolithicTest, FileApiViaTraps) {
  mk::Task* app = kernel_.CreateTask("app");
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    ASSERT_EQ(hpfs_->Format(env), base::Status::kOk);
    auto h = os_->Open(env, "/config.sys", svc::kFsCreate);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(os_->Write(env, *h, 0, "FILES=40", 8).ok());
    char buf[16] = {};
    auto got = os_->Read(env, *h, 0, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(buf, *got), "FILES=40");
    ASSERT_EQ(os_->Close(env, *h), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GE(os_->syscalls(), 4u);
}

TEST_F(MonolithicTest, InKernelDriverIsInterruptDriven) {
  mk::Task* app = kernel_.CreateTask("app");
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    std::vector<uint8_t> sector(hw::Disk::kSectorSize, 0x3c);
    ASSERT_EQ(store_->Write(env, 100, 1, sector.data()), base::Status::kOk);
    std::vector<uint8_t> back(hw::Disk::kSectorSize);
    ASSERT_EQ(store_->Read(env, 100, 1, back.data()), base::Status::kOk);
    EXPECT_EQ(back, sector);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GE(machine_.pic().raise_count(3), 2u);
}

TEST_F(MonolithicTest, FileOpsCheaperThanThroughFileServer) {
  // The heart of Table 1: the same PFS reached by trap + call must beat the
  // RPC path through the user-level file server (which also crosses to the
  // disk-driver task). Here the PFS is warmed so the comparison isolates the
  // access structure, not the disk.
  mk::Task* app = kernel_.CreateTask("app");
  uint64_t mono_cycles = 0;
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    ASSERT_EQ(hpfs_->Format(env), base::Status::kOk);
    auto h = os_->Open(env, "/bench.dat", svc::kFsCreate);
    ASSERT_TRUE(h.ok());
    char block[512] = {};
    for (int i = 0; i < 5; ++i) {  // warm
      ASSERT_TRUE(os_->Write(env, *h, 0, block, sizeof(block)).ok());
      ASSERT_TRUE(os_->Read(env, *h, 0, block, sizeof(block)).ok());
    }
    const uint64_t c0 = kernel_.cpu().cycles();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(os_->Write(env, *h, 0, block, sizeof(block)).ok());
      ASSERT_TRUE(os_->Read(env, *h, 0, block, sizeof(block)).ok());
    }
    mono_cycles = kernel_.cpu().cycles() - c0;
    ASSERT_EQ(os_->Close(env, *h), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(mono_cycles, 0u);
  // The multi-server equivalent is measured in bench_table1; here just
  // sanity-check that the monolithic path is well under a millisecond per op
  // once warm (no RPC, no address-space switches).
  EXPECT_LT(mono_cycles / 100, 133'000u);
}

TEST_F(MonolithicTest, WindowMessagesThroughKernelQueues) {
  mk::Task* app = kernel_.CreateTask("app");
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    auto hwnd = os_->WinCreate(env, 10, 10, 100, 100);
    ASSERT_TRUE(hwnd.ok());
    ASSERT_EQ(os_->WinPost(env, *hwnd, 0xf1, 1, 2), base::Status::kOk);
    auto msg = os_->WinGet(env, *hwnd);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->msg, 0xf1u);
    EXPECT_EQ(msg->p2, 2u);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(MonolithicTest, DrawGoesThroughGreThunk) {
  mk::Task* app = kernel_.CreateTask("app");
  uint64_t thunked = 0;
  uint64_t direct_estimate = 0;
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    auto vram = os_->MapVram(*app);
    ASSERT_TRUE(vram.ok());
    auto hwnd = os_->WinCreate(env, 0, 0, 200, 200);
    ASSERT_TRUE(hwnd.ok());
    // Warm.
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(os_->WinFillRect(env, *app, *vram, *hwnd, 0, 0, 64, 8, 1), base::Status::kOk);
    }
    const uint64_t i0 = kernel_.Counters().instructions;
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(os_->WinFillRect(env, *app, *vram, *hwnd, 0, 0, 64, 8, 1), base::Status::kOk);
    }
    thunked = kernel_.Counters().instructions - i0;
    // Rough lower bound for the raw pixel work of the same 20 fills.
    direct_estimate = 20ull * 8 * (8 + 64 / 8);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(thunked, direct_estimate + 20ull * 300)
      << "each draw call must pay the 16-bit GRE thunk";
}

TEST_F(MonolithicTest, DrawWritesPixels) {
  mk::Task* app = kernel_.CreateTask("app");
  kernel_.CreateThread(app, "main", [&](mk::Env& env) {
    auto vram = os_->MapVram(*app);
    ASSERT_TRUE(vram.ok());
    auto hwnd = os_->WinCreate(env, 50, 60, 100, 100);
    ASSERT_TRUE(hwnd.ok());
    ASSERT_EQ(os_->WinFillRect(env, *app, *vram, *hwnd, 5, 5, 10, 1, 0x77),
              base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(machine_.mem().ReadU8(fb_dev_->vram_base() + (60 + 5) * 640 + 55), 0x77);
}

}  // namespace
}  // namespace baseline
