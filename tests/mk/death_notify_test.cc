// Dead-name/port-death notification tests (the Mach notification flavour,
// broadcast to registered watcher ports) plus the TerminateTask teardown
// regressions the restart manager depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TaskDeathNotice TaskNoticeOf(const MachMessage& msg) {
  TaskDeathNotice notice;
  EXPECT_GE(msg.inline_data.size(), sizeof(notice));
  std::memcpy(&notice, msg.inline_data.data(), sizeof(notice));
  return notice;
}

PortDeathNotice PortNoticeOf(const MachMessage& msg) {
  PortDeathNotice notice;
  EXPECT_GE(msg.inline_data.size(), sizeof(notice));
  std::memcpy(&notice, msg.inline_data.data(), sizeof(notice));
  return notice;
}

// A watcher sees a dying task as: one TaskDeathNotice (first, always),
// then one PortDeathNotice per receive port torn down with it.
TEST_F(KernelTest, WatcherReceivesTaskThenPortDeath) {
  Task* watcher_task = kernel_.CreateTask("watcher");
  auto notify = kernel_.PortAllocate(*watcher_task);
  ASSERT_TRUE(notify.ok());
  ASSERT_EQ(kernel_.RegisterDeathWatcher(*watcher_task, *notify), base::Status::kOk);

  Task* victim = kernel_.CreateTask("victim");
  auto victim_port = kernel_.PortAllocate(*victim);
  ASSERT_TRUE(victim_port.ok());
  const uint64_t victim_port_id = (*kernel_.ResolvePort(*victim, *victim_port))->id();
  const TaskId victim_id = victim->id();

  kernel_.CreateThread(watcher_task, "watch", [&, notify = *notify](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.MachMsgReceive(notify, &msg), base::Status::kOk);
    EXPECT_EQ(msg.msg_id, kTaskDeathMsgId);
    EXPECT_EQ(TaskNoticeOf(msg).task, victim_id);
    // The teardown follows with one PortDeathNotice per receive port the
    // victim held — its implicit self port and the explicit one.
    std::vector<uint64_t> dead_ports;
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(env.MachMsgReceive(notify, &msg), base::Status::kOk);
      EXPECT_EQ(msg.msg_id, kPortDeathMsgId);
      dead_ports.push_back(PortNoticeOf(msg).port_id);
    }
    EXPECT_NE(std::find(dead_ports.begin(), dead_ports.end(), victim_port_id),
              dead_ports.end());
  });
  Task* driver = kernel_.CreateTask("driver");
  kernel_.CreateThread(driver, "kill", [&](Env& env) { env.kernel().TerminateTask(victim); });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("mk.task_deaths"), 1u);
}

TEST_F(KernelTest, UnregisteredWatcherHearsNothing) {
  Task* watcher_task = kernel_.CreateTask("watcher");
  auto notify = kernel_.PortAllocate(*watcher_task);
  ASSERT_TRUE(notify.ok());
  ASSERT_EQ(kernel_.RegisterDeathWatcher(*watcher_task, *notify), base::Status::kOk);
  // Double registration is rejected; unregistering twice is too.
  EXPECT_EQ(kernel_.RegisterDeathWatcher(*watcher_task, *notify), base::Status::kAlreadyExists);
  ASSERT_EQ(kernel_.UnregisterDeathWatcher(*watcher_task, *notify), base::Status::kOk);
  EXPECT_EQ(kernel_.UnregisterDeathWatcher(*watcher_task, *notify), base::Status::kNotFound);

  Task* victim = kernel_.CreateTask("victim");
  kernel_.CreateThread(watcher_task, "watch", [&, notify = *notify](Env& env) {
    env.kernel().TerminateTask(victim);
    MachMessage msg;
    EXPECT_EQ(env.MachMsgReceive(notify, &msg, /*timeout_ns=*/1'000'000),
              base::Status::kTimedOut);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// Regression for the scheduler's "waking dead thread" check: killing a
// server task while callers are queued on its port (and one request is in
// flight) must fail every caller with kPortDead and leave a consistent
// object graph — nothing may later try to wake a terminated thread.
TEST_F(KernelTest, TerminateServerWithQueuedAndInFlightCallers) {
  Task* server_task = kernel_.CreateTask("server");
  auto recv = kernel_.PortAllocate(*server_task);
  ASSERT_TRUE(recv.ok());
  kernel_.CreateThread(server_task, "crasher", [&, recv = *recv](Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    ASSERT_TRUE(req.ok());
    // Crash with one request in flight and the other callers still queued.
    env.kernel().TerminateTask(&env.task());
  });

  std::vector<base::Status> statuses(3, base::Status::kOk);
  for (int i = 0; i < 3; ++i) {
    Task* client_task = kernel_.CreateTask("client");
    auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
    ASSERT_TRUE(send.ok());
    kernel_.CreateThread(client_task, "caller", [&statuses, i, send = *send](Env& env) {
      uint32_t req = 1;
      uint32_t reply = 0;
      statuses[i] = env.RpcCall(send, &req, sizeof(req), &reply, sizeof(reply));
    });
  }
  EXPECT_EQ(kernel_.Run(), 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(statuses[i], base::Status::kPortDead) << "caller " << i;
  }
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// TerminateTask is idempotent and safe on a task whose threads already ran
// to completion.
TEST_F(KernelTest, TerminateTaskIsIdempotent) {
  Task* task = kernel_.CreateTask("shortlived");
  kernel_.CreateThread(task, "t", [](Env&) {});
  EXPECT_EQ(kernel_.Run(), 0u);
  kernel_.TerminateTask(task);
  kernel_.TerminateTask(task);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("mk.task_deaths"), 1u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// A watcher whose own port dies is pruned instead of wedging later deaths.
TEST_F(KernelTest, DeadWatcherPortIsPruned) {
  Task* watcher_task = kernel_.CreateTask("watcher");
  auto notify = kernel_.PortAllocate(*watcher_task);
  ASSERT_TRUE(notify.ok());
  ASSERT_EQ(kernel_.RegisterDeathWatcher(*watcher_task, *notify), base::Status::kOk);
  ASSERT_EQ(kernel_.PortDestroy(*watcher_task, *notify), base::Status::kOk);
  Task* victim = kernel_.CreateTask("victim");
  Task* driver = kernel_.CreateTask("driver");
  kernel_.CreateThread(driver, "kill", [&](Env& env) { env.kernel().TerminateTask(victim); });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace mk
