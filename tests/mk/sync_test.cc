#include <vector>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TEST_F(KernelTest, SemaphoreCountingBasics) {
  Task* task = kernel_.CreateTask("t");
  auto sem = kernel_.SemCreate(2);
  ASSERT_TRUE(sem.ok());
  kernel_.CreateThread(task, "w", [&](Env& env) {
    EXPECT_EQ(env.kernel().SemWait(*sem), base::Status::kOk);
    EXPECT_EQ(env.kernel().SemWait(*sem), base::Status::kOk);
    // Third wait would block; use a timeout to prove it.
    EXPECT_EQ(env.kernel().SemWait(*sem, 1'000'000), base::Status::kTimedOut);
    EXPECT_EQ(env.kernel().SemSignal(*sem), base::Status::kOk);
    EXPECT_EQ(env.kernel().SemWait(*sem), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(KernelTest, SemaphoreWakesBlockedWaiterFifo) {
  Task* task = kernel_.CreateTask("t");
  auto sem = kernel_.SemCreate(0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    kernel_.CreateThread(task, "waiter", [&, i](Env& env) {
      ASSERT_EQ(env.kernel().SemWait(*sem), base::Status::kOk);
      order.push_back(i);
    });
  }
  kernel_.CreateThread(task, "signaller", [&](Env& env) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(env.kernel().SemSignal(*sem), base::Status::kOk);
    }
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(KernelTest, SemaphoreDestroyAbortsWaiters) {
  Task* task = kernel_.CreateTask("t");
  auto sem = kernel_.SemCreate(0);
  base::Status st = base::Status::kOk;
  kernel_.CreateThread(task, "waiter", [&](Env& env) { st = env.kernel().SemWait(*sem); });
  kernel_.CreateThread(task, "destroyer", [&](Env& env) {
    env.Yield();
    ASSERT_EQ(env.kernel().SemDestroy(*sem), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(st, base::Status::kAborted);
}

TEST_F(KernelTest, MemSyncFastPathAvoidsKernel) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  kernel_.CreateThread(task, "w", [&](Env& env) {
    uint32_t v = 7;
    ASSERT_EQ(env.CopyOut(*addr, &v, 4), base::Status::kOk);
    // Value differs from expected: returns immediately (user-level fast path).
    const uint64_t c0 = env.kernel().cpu().cycles();
    EXPECT_EQ(env.kernel().MemSyncWait(*addr, /*expected=*/0), base::Status::kOk);
    // A genuinely cheap operation: far less than a kernel trap's fixed cost.
    EXPECT_LT(env.kernel().cpu().cycles() - c0, Costs::kTrapStallCycles);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(KernelTest, MemSyncWaitWakeAcrossAddressSpaces) {
  // Two tasks share a coerced region and rendezvous futex-style on a word in
  // it — the memory synchronizer working across address spaces.
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto addr = kernel_.VmAllocateCoerced(*a, hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  ASSERT_EQ(kernel_.VmMapCoerced(*b, *addr), base::Status::kOk);
  bool woken = false;
  kernel_.CreateThread(a, "waiter", [&](Env& env) {
    uint32_t zero = 0;
    ASSERT_EQ(env.CopyOut(*addr, &zero, 4), base::Status::kOk);
    ASSERT_EQ(env.kernel().MemSyncWait(*addr, 0), base::Status::kOk);
    woken = true;
  });
  kernel_.CreateThread(b, "waker", [&](Env& env) {
    env.Yield();  // let the waiter park
    uint32_t one = 1;
    ASSERT_EQ(env.CopyOut(*addr, &one, 4), base::Status::kOk);
    EXPECT_EQ(env.kernel().MemSyncWake(*addr, 1), 1u);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(woken);
}

TEST_F(KernelTest, MemSyncWaitTimesOut) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, hw::kPageSize);
  base::Status st = base::Status::kOk;
  kernel_.CreateThread(task, "w", [&](Env& env) {
    uint32_t zero = 0;
    ASSERT_EQ(env.CopyOut(*addr, &zero, 4), base::Status::kOk);
    st = env.kernel().MemSyncWait(*addr, 0, /*timeout_ns=*/500'000);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(st, base::Status::kTimedOut);
}

TEST_F(KernelTest, PeriodicTimerPostsMessages) {
  Task* task = kernel_.CreateTask("t");
  auto port = kernel_.PortAllocate(*task);
  ASSERT_TRUE(port.ok());
  auto timer = kernel_.TimerArmPeriodic(*task, *port, /*period_ns=*/1'000'000);
  ASSERT_TRUE(timer.ok());
  int ticks = 0;
  kernel_.CreateThread(task, "ticker", [&](Env& env) {
    for (int i = 0; i < 3; ++i) {
      MachMessage msg;
      ASSERT_EQ(env.kernel().MachMsgReceive(*port, &msg), base::Status::kOk);
      ++ticks;
    }
    ASSERT_EQ(env.kernel().TimerCancel(*timer), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(kernel_.TimerCancel(*timer), base::Status::kNotFound);  // already cancelled
}

TEST_F(KernelTest, KernelInterruptHandlerRuns) {
  Task* task = kernel_.CreateTask("t");
  int fired = 0;
  kernel_.RegisterKernelInterrupt(9, [&] { ++fired; });
  machine_.ScheduleAt(1000, [&] { machine_.pic().Raise(9); });
  kernel_.CreateThread(task, "w", [&](Env& env) { env.SleepNs(1'000'000); });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(kernel_.interrupts_delivered(), 1u);
}

TEST_F(KernelTest, InterruptReflectsToUserLevelPort) {
  // The user-level device driver model: interrupts arrive as messages.
  Task* driver = kernel_.CreateTask("driver");
  auto port = kernel_.PortAllocate(*driver);
  ASSERT_TRUE(port.ok());
  ASSERT_EQ(kernel_.ReflectInterrupt(*driver, 11, *port), base::Status::kOk);
  machine_.ScheduleAt(500, [&] { machine_.pic().Raise(11); });
  uint32_t msg_id = 0;
  kernel_.CreateThread(driver, "isr", [&](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(*port, &msg), base::Status::kOk);
    msg_id = msg.msg_id;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(msg_id, 0x1000u + 11);
}

}  // namespace
}  // namespace mk
