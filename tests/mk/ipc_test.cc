#include <cstring>
#include <string>
#include <vector>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TEST_F(KernelTest, MachMsgSendReceiveInline) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  std::string got;
  kernel_.CreateThread(a, "sender", [&, send = *send](Env& env) {
    MachMessage msg;
    msg.msg_id = 42;
    msg.dest = send;
    const char body[] = "async";
    msg.inline_data.assign(body, body + sizeof(body));
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
  });
  kernel_.CreateThread(b, "receiver", [&, recv = *recv](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
    EXPECT_EQ(msg.msg_id, 42u);
    got = reinterpret_cast<const char*>(msg.inline_data.data());
  });
  kernel_.Run();
  EXPECT_EQ(got, "async");
}

TEST_F(KernelTest, MachMsgIsAsynchronousUpToQueueLimit) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  int sent_without_blocking = 0;
  kernel_.CreateThread(a, "sender", [&, send = *send](Env& env) {
    // Up to the queue limit, sends complete without a receiver.
    for (size_t i = 0; i < Port::kDefaultQueueLimit; ++i) {
      MachMessage msg;
      msg.dest = send;
      msg.inline_data = {1, 2, 3};
      ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
      ++sent_without_blocking;
    }
  });
  kernel_.Run();
  EXPECT_EQ(sent_without_blocking, static_cast<int>(Port::kDefaultQueueLimit));
  // Drain.
  kernel_.CreateThread(b, "receiver", [&, recv = *recv](Env& env) {
    for (size_t i = 0; i < Port::kDefaultQueueLimit; ++i) {
      MachMessage msg;
      ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
    }
  });
  kernel_.Run();
}

TEST_F(KernelTest, MachMsgFullQueueBlocksSenderUntilReceive) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  int sent = 0;
  int received = 0;
  kernel_.CreateThread(a, "sender", [&, send = *send](Env& env) {
    for (size_t i = 0; i < Port::kDefaultQueueLimit + 3; ++i) {
      MachMessage msg;
      msg.dest = send;
      ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
      ++sent;
    }
  });
  kernel_.CreateThread(b, "receiver", [&, recv = *recv](Env& env) {
    // Let the sender fill the queue and block.
    env.Yield();
    EXPECT_EQ(sent, static_cast<int>(Port::kDefaultQueueLimit));
    for (size_t i = 0; i < Port::kDefaultQueueLimit + 3; ++i) {
      MachMessage msg;
      ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
      ++received;
    }
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(received, static_cast<int>(Port::kDefaultQueueLimit) + 3);
}

// Queue-limit / blocked_senders interaction with port death: senders parked
// on a full queue must all wake with kPortDead when the port is destroyed —
// not stay blocked, not ever see their message "delivered" to a dead port.
TEST_F(KernelTest, MachMsgPortDeathWakesBlockedSenders) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  ASSERT_TRUE(recv.ok());
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  ASSERT_TRUE(send.ok());

  // Two senders each fill-and-overflow: the first kDefaultQueueLimit sends
  // complete, then both threads park in blocked_senders.
  std::vector<base::Status> parked_status(2, base::Status::kOk);
  for (int i = 0; i < 2; ++i) {
    kernel_.CreateThread(a, "sender" + std::to_string(i), [&, i, right = *send](Env& env) {
      for (;;) {
        MachMessage msg;
        msg.dest = right;
        msg.inline_data = {static_cast<uint8_t>(i)};
        const base::Status st = env.kernel().MachMsgSend(std::move(msg));
        if (st != base::Status::kOk) {
          parked_status[i] = st;
          return;
        }
      }
    });
  }
  kernel_.CreateThread(b, "killer", [&, r = *recv](Env& env) {
    // Let both senders saturate the queue and park.
    (void)env.SleepNs(1'000'000);
    (void)env.kernel().PortDestroy(env.task(), r);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(parked_status[0], base::Status::kPortDead);
  EXPECT_EQ(parked_status[1], base::Status::kPortDead);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

TEST_F(KernelTest, MachMsgReceiveTimeout) {
  Task* a = kernel_.CreateTask("a");
  auto recv = kernel_.PortAllocate(*a);
  base::Status st = base::Status::kOk;
  uint64_t waited_ns = 0;
  kernel_.CreateThread(a, "receiver", [&, recv = *recv](Env& env) {
    MachMessage msg;
    const uint64_t t0 = env.NowNs();
    st = env.kernel().MachMsgReceive(recv, &msg, /*timeout_ns=*/2'000'000);
    waited_ns = env.NowNs() - t0;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(st, base::Status::kTimedOut);
  EXPECT_GE(waited_ns, 2'000'000u);
}

TEST_F(KernelTest, MachMsgCarriesReplyPortAsSendOnce) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  uint32_t answer = 0;
  kernel_.CreateThread(a, "client", [&, send = *send](Env& env) {
    auto reply_port = env.PortAllocate();
    ASSERT_TRUE(reply_port.ok());
    MachMessage msg;
    msg.dest = send;
    msg.reply_port = *reply_port;
    msg.inline_data = {21, 0, 0, 0};
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
    MachMessage reply;
    ASSERT_EQ(env.kernel().MachMsgReceive(*reply_port, &reply), base::Status::kOk);
    std::memcpy(&answer, reply.inline_data.data(), 4);
  });
  kernel_.CreateThread(b, "server", [&, recv = *recv](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
    ASSERT_NE(msg.reply_port, kNullPort);
    uint32_t v;
    std::memcpy(&v, msg.inline_data.data(), 4);
    MachMessage reply;
    reply.dest = msg.reply_port;
    v *= 2;
    reply.inline_data.resize(4);
    std::memcpy(reply.inline_data.data(), &v, 4);
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(reply)), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(answer, 42u);
}

TEST_F(KernelTest, MachMsgTransfersPortRights) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  auto a_port = kernel_.PortAllocate(*a);
  Port* expected = *kernel_.ResolvePort(*a, *a_port);
  Port* received = nullptr;
  kernel_.CreateThread(a, "sender", [&, send = *send](Env& env) {
    MachMessage msg;
    msg.dest = send;
    msg.rights.push_back({.name = *a_port, .disposition = RightType::kSend});
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
  });
  kernel_.CreateThread(b, "receiver", [&, recv = *recv](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
    ASSERT_EQ(msg.rights.size(), 1u);
    auto p = env.kernel().ResolvePort(env.task(), msg.rights[0].name);
    ASSERT_TRUE(p.ok());
    received = *p;
  });
  kernel_.Run();
  EXPECT_EQ(received, expected);
}

TEST_F(KernelTest, MachMsgOolVirtualCopyIsSnapshot) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  uint8_t receiver_saw = 0;
  kernel_.CreateThread(a, "sender", [&, send = *send](Env& env) {
    auto buf = env.VmAllocate(hw::kPageSize * 2);
    ASSERT_TRUE(buf.ok());
    ASSERT_EQ(env.kernel().UserFill(env.task(), *buf, 0x5a, 64), base::Status::kOk);
    MachMessage msg;
    msg.dest = send;
    msg.ool.push_back({.address = *buf, .size = hw::kPageSize, .deallocate_sender = false});
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
    // Overwrite AFTER sending: the receiver must still see the snapshot.
    ASSERT_EQ(env.kernel().UserFill(env.task(), *buf, 0x11, 64), base::Status::kOk);
  });
  kernel_.CreateThread(b, "receiver", [&, recv = *recv](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
    ASSERT_EQ(msg.ool.size(), 1u);
    uint8_t byte = 0;
    ASSERT_EQ(env.CopyIn(msg.ool[0].address, &byte, 1), base::Status::kOk);
    receiver_saw = byte;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(receiver_saw, 0x5a);
}

}  // namespace
}  // namespace mk
