// Kernel RPC admission control: a per-port bound on the rendezvous queue.
// When the queue is full, additional callers are shed synchronously with
// kBusy — the overloaded server never sees them, the callers never block —
// and the shed is visible in metrics (mk.rpc.shed, mk.rpc.queue_depth) and
// the trace (kRpcShed).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mk/rpc_robust.h"
#include "src/mk/server_loop.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

constexpr uint32_t kEchoOp = 1;

TEST_F(KernelTest, QueueLimitShedsExcessCallersWithBusy) {
  kernel_.tracer().Enable();
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  ASSERT_TRUE(recv.ok());
  ASSERT_EQ(kernel_.PortSetQueueLimit(*server_task, *recv, 2), base::Status::kOk);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
  ASSERT_TRUE(send.ok());

  // The server parks until the clients have all attempted their calls, then
  // drains whatever was admitted.
  kernel_.CreateThread(server_task, "server", [&, recv = *recv](Env& env) {
    (void)env.SleepNs(1'000'000);
    uint8_t buf[64];
    for (int i = 0; i < 2; ++i) {
      auto request = env.RpcReceive(recv, buf, sizeof(buf));
      ASSERT_TRUE(request.ok());
      env.RpcReply(request->token, buf, request->req_len);
    }
    (void)env.kernel().PortDestroy(env.task(), recv);
  });

  // Four concurrent callers against a limit of 2: two are admitted (and
  // eventually served), two are shed with kBusy without ever blocking.
  std::vector<base::Status> statuses(4, base::Status::kInternal);
  for (int i = 0; i < 4; ++i) {
    kernel_.CreateThread(client_task, "c" + std::to_string(i), [&, i, send = *send](Env& env) {
      uint32_t req[2] = {kEchoOp, static_cast<uint32_t>(i)};
      uint32_t reply[2] = {};
      statuses[i] = env.RpcCall(send, req, sizeof(req), reply, sizeof(reply));
    });
  }
  EXPECT_EQ(kernel_.Run(), 0u);

  int ok = 0;
  int busy = 0;
  for (const base::Status st : statuses) {
    if (st == base::Status::kOk) {
      ++ok;
    } else if (st == base::Status::kBusy) {
      ++busy;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(busy, 2);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("mk.rpc.shed"), 2u);
  EXPECT_GT(kernel_.tracer().metrics().Hist("mk.rpc.queue_depth").count(), 0u);
  // Shed events carry the saturated port.
  int shed_events = 0;
  for (const auto& event : kernel_.tracer().Events()) {
    if (event.type == trace::EventType::kRpcShed) {
      ++shed_events;
    }
  }
  EXPECT_EQ(shed_events, 2);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

TEST_F(KernelTest, UnboundedPortNeverSheds) {
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);

  kernel_.CreateThread(server_task, "server", [&, recv = *recv](Env& env) {
    (void)env.SleepNs(1'000'000);
    uint8_t buf[64];
    for (int i = 0; i < 6; ++i) {
      auto request = env.RpcReceive(recv, buf, sizeof(buf));
      ASSERT_TRUE(request.ok());
      env.RpcReply(request->token, buf, request->req_len);
    }
    (void)env.kernel().PortDestroy(env.task(), recv);
  });
  std::vector<base::Status> statuses(6, base::Status::kInternal);
  for (int i = 0; i < 6; ++i) {
    kernel_.CreateThread(client_task, "c" + std::to_string(i), [&, i, send = *send](Env& env) {
      uint32_t req[2] = {kEchoOp, static_cast<uint32_t>(i)};
      uint32_t reply[2] = {};
      statuses[i] = env.RpcCall(send, req, sizeof(req), reply, sizeof(reply));
    });
  }
  EXPECT_EQ(kernel_.Run(), 0u);
  for (const base::Status st : statuses) {
    EXPECT_EQ(st, base::Status::kOk);
  }
  EXPECT_EQ(kernel_.tracer().metrics().Counter("mk.rpc.shed"), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

TEST_F(KernelTest, PortSetQueueLimitValidatesTheRight) {
  Task* task = kernel_.CreateTask("t");
  EXPECT_EQ(kernel_.PortSetQueueLimit(*task, 12345, 4), base::Status::kInvalidName);
  auto recv = kernel_.PortAllocate(*task);
  ASSERT_TRUE(recv.ok());
  EXPECT_EQ(kernel_.PortSetQueueLimit(*task, *recv, 4), base::Status::kOk);
  // A send right is not a receive right: the holder of a send right must not
  // be able to reconfigure the server's admission policy.
  Task* other = kernel_.CreateTask("other");
  auto send = kernel_.MakeSendRight(*task, *recv, *other);
  ASSERT_TRUE(send.ok());
  EXPECT_NE(kernel_.PortSetQueueLimit(*other, *send, 4), base::Status::kOk);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// RpcCallRobust against a persistently saturated port: every attempt is shed
// with kBusy and the exhausted call reports kBusy (overloaded, not gone).
TEST_F(KernelTest, RobustCallExhaustsAttemptsOnPersistentBusy) {
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  ASSERT_TRUE(recv.ok());
  // Limit 0 is "unbounded", so saturate a limit-1 queue with a parked caller.
  ASSERT_EQ(kernel_.PortSetQueueLimit(*server_task, *recv, 1), base::Status::kOk);
  auto blocker_send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);

  // The blocker occupies the queue's only slot for the whole test; nobody
  // ever serves, so its call ends kPortDead when the port is torn down.
  kernel_.CreateThread(client_task, "blocker", [&, right = *blocker_send](Env& env) {
    uint32_t req[2] = {kEchoOp, 0};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(right, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kPortDead);
  });
  kernel_.CreateThread(client_task, "robust", [&, right = *send](Env& env) {
    (void)env.SleepNs(10'000);  // let the blocker park first
    PortName cached = right;
    const PortResolver resolver = [right](Env&) -> base::Result<PortName> { return right; };
    RobustCallOptions opts;
    opts.max_attempts = 3;
    opts.retry_backoff_ns = 20'000;
    uint32_t req[2] = {kEchoOp, 1};
    uint32_t reply[2] = {};
    EXPECT_EQ(RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply), opts),
              base::Status::kBusy);
    EXPECT_EQ(env.kernel().tracer().metrics().Counter("mk.rpc.shed"), 3u);
    (void)env.kernel().PortDestroy(*server_task, recv.value());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Satellite regression: concurrent retriers must not retry in lockstep.
// Two robust callers hammer the same saturated port with the same backoff
// configuration; every shed attempt leaves a kRpcShed event stamped with the
// calling thread. The inter-attempt gaps must diverge between the threads —
// per-thread jitter streams — by a sizeable margin, not just interleaving
// noise. A broken jitter (shared stream, or none) retries in near-lockstep
// and fails the margin.
TEST_F(KernelTest, RetryJitterDesynchronizesThreads) {
  kernel_.tracer().Enable();
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  ASSERT_TRUE(recv.ok());
  ASSERT_EQ(kernel_.PortSetQueueLimit(*server_task, *recv, 1), base::Status::kOk);
  auto blocker_send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
  ASSERT_TRUE(blocker_send.ok());

  kernel_.CreateThread(client_task, "blocker", [&, right = *blocker_send](Env& env) {
    uint32_t req[2] = {kEchoOp, 0};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(right, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kPortDead);
  });

  std::vector<ThreadId> retrier_ids(2);
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
    ASSERT_TRUE(send.ok());
    kernel_.CreateThread(client_task, "retrier" + std::to_string(i),
                         [&, i, right = *send](Env& env) {
                           retrier_ids[i] = env.thread()->id();
                           (void)env.SleepNs(10'000);  // let the blocker park
                           PortName cached = right;
                           const PortResolver resolver = [right](Env&) -> base::Result<PortName> {
                             return right;
                           };
                           RobustCallOptions opts;
                           opts.max_attempts = 4;
                           opts.retry_backoff_ns = 100'000;
                           uint32_t req[2] = {kEchoOp, 1};
                           uint32_t reply[2] = {};
                           EXPECT_EQ(RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply,
                                                   sizeof(reply), opts),
                                     base::Status::kBusy);
                           if (++done == 2) {
                             (void)env.kernel().PortDestroy(*server_task, recv.value());
                           }
                         });
  }
  EXPECT_EQ(kernel_.Run(), 0u);

  // Collect each retrier's shed instants (cycles) from the trace.
  std::vector<std::vector<uint64_t>> shed_cycles(2);
  for (const auto& event : kernel_.tracer().Events()) {
    if (event.type != trace::EventType::kRpcShed) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      if (event.thread == retrier_ids[i]) {
        shed_cycles[i].push_back(event.cycle);
      }
    }
  }
  ASSERT_EQ(shed_cycles[0].size(), 4u);
  ASSERT_EQ(shed_cycles[1].size(), 4u);
  // Both threads slept the same base backoff before each retry; only jitter
  // separates their inter-attempt gaps. Require a spread well above what
  // deterministic interleaving alone produces (the base unit here is
  // 100'000 ns of backoff — demand at least 1'000 ns of divergence).
  const uint64_t ns_per_cycle_gap_floor = 1'000;
  bool diverged = false;
  for (size_t a = 1; a < 4; ++a) {
    const uint64_t gap0 = shed_cycles[0][a] - shed_cycles[0][a - 1];
    const uint64_t gap1 = shed_cycles[1][a] - shed_cycles[1][a - 1];
    const uint64_t spread = gap0 > gap1 ? gap0 - gap1 : gap1 - gap0;
    if (spread > ns_per_cycle_gap_floor) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "per-thread jitter must desynchronize retry schedules";
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// CircuitBreaker unit tests: trip threshold, open-window fast-fail,
// half-open probe, close on success, cooldown widening on repeated trips.
TEST(CircuitBreakerTest, TripsAfterThresholdAndFastFailsWhileOpen) {
  BreakerOptions opts;
  opts.busy_threshold = 3;
  opts.cooldown_ns = 1'000;
  CircuitBreaker breaker(opts);
  EXPECT_TRUE(breaker.Admit(0));
  breaker.OnBusy(0);
  EXPECT_TRUE(breaker.Admit(0));
  breaker.OnBusy(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.OnBusy(0);  // third consecutive busy trips it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Admit(500)) << "open window refuses attempts";
  EXPECT_TRUE(breaker.Admit(1'000)) << "cooldown expiry admits the probe";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Admit(1'000)) << "one probe at a time";
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_busy(), 0u);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithWiderCooldown) {
  BreakerOptions opts;
  opts.busy_threshold = 1;
  opts.cooldown_ns = 1'000;
  CircuitBreaker breaker(opts);
  breaker.OnBusy(0);  // trip #1: open until 1'000
  EXPECT_TRUE(breaker.Admit(1'000));
  breaker.OnBusy(1'000);  // failed probe: trip #2, cooldown doubled
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.Admit(2'500)) << "doubled cooldown (2000ns) still open";
  EXPECT_TRUE(breaker.Admit(3'000));
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, CooldownWideningIsCapped) {
  BreakerOptions opts;
  opts.busy_threshold = 1;
  opts.cooldown_ns = 1'000;
  opts.max_cooldown_shift = 2;
  CircuitBreaker breaker(opts);
  uint64_t now = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(breaker.Admit(now));
    breaker.OnBusy(now);
    // Shift caps at 2: cooldown never exceeds 4'000.
    EXPECT_TRUE(breaker.Admit(now + 4'000));
    now += 4'000;
    breaker.OnBusy(now);  // fail the probe; re-open
    now += 4'000;
  }
  EXPECT_TRUE(breaker.Admit(now));
}

// End-to-end: a robust call with a breaker fast-fails kUnavailable once the
// destination has shed it busy_threshold times, without issuing further RPCs.
TEST_F(KernelTest, BreakerFastFailsRobustCallsUnderSustainedShed) {
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  ASSERT_TRUE(recv.ok());
  ASSERT_EQ(kernel_.PortSetQueueLimit(*server_task, *recv, 1), base::Status::kOk);
  auto blocker_send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);

  kernel_.CreateThread(client_task, "blocker", [&, right = *blocker_send](Env& env) {
    uint32_t req[2] = {kEchoOp, 0};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(right, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kPortDead);
  });
  kernel_.CreateThread(client_task, "robust", [&, right = *send](Env& env) {
    (void)env.SleepNs(10'000);
    PortName cached = right;
    const PortResolver resolver = [right](Env&) -> base::Result<PortName> { return right; };
    BreakerOptions bopts;
    bopts.busy_threshold = 2;
    bopts.cooldown_ns = 50'000'000;  // far beyond this test's horizon
    CircuitBreaker breaker(bopts);
    RobustCallOptions opts;
    opts.max_attempts = 2;
    opts.retry_backoff_ns = 20'000;
    opts.breaker = &breaker;
    uint32_t req[2] = {kEchoOp, 1};
    uint32_t reply[2] = {};
    // First call: both attempts shed, breaker trips at the 2nd kBusy.
    EXPECT_EQ(RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply), opts),
              base::Status::kBusy);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    const uint64_t sheds_before =
        env.kernel().tracer().metrics().Counter("mk.rpc.shed");
    // Second call: the open breaker refuses it before any RPC is issued.
    EXPECT_EQ(RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply), opts),
              base::Status::kUnavailable);
    EXPECT_EQ(env.kernel().tracer().metrics().Counter("mk.rpc.shed"), sheds_before)
        << "a fast-failed call must not reach the port";
    EXPECT_GE(env.kernel().tracer().metrics().Counter("mk.rpc.breaker_fast_fail"), 1u);
    (void)env.kernel().PortDestroy(*server_task, recv.value());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace mk
