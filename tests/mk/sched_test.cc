#include <vector>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TEST_F(KernelTest, SingleThreadRunsToCompletion) {
  Task* task = kernel_.CreateTask("t");
  bool ran = false;
  kernel_.CreateThread(task, "worker", [&](Env& env) {
    env.Compute(100);
    ran = true;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(ran);
}

TEST_F(KernelTest, ThreadsInterleaveOnYield) {
  Task* task = kernel_.CreateTask("t");
  std::vector<int> order;
  kernel_.CreateThread(task, "a", [&](Env& env) {
    for (int i = 0; i < 3; ++i) {
      order.push_back(1);
      env.Yield();
    }
  });
  kernel_.CreateThread(task, "b", [&](Env& env) {
    for (int i = 0; i < 3; ++i) {
      order.push_back(2);
      env.Yield();
    }
  });
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST_F(KernelTest, HigherPriorityRunsFirst) {
  Task* task = kernel_.CreateTask("t");
  std::vector<int> order;
  kernel_.CreateThread(
      task, "low", [&](Env&) { order.push_back(0); }, /*priority=*/5);
  kernel_.CreateThread(
      task, "high", [&](Env&) { order.push_back(1); }, /*priority=*/20);
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST_F(KernelTest, JoinWaitsForTarget) {
  Task* task = kernel_.CreateTask("t");
  bool child_done = false;
  bool joined_after_child = false;
  Thread* child = kernel_.CreateThread(task, "child", [&](Env& env) {
    env.Yield();
    env.Yield();
    child_done = true;
  });
  kernel_.CreateThread(task, "parent", [&](Env& env) {
    EXPECT_EQ(env.kernel().ThreadJoin(child), base::Status::kOk);
    joined_after_child = child_done;
  });
  kernel_.Run();
  EXPECT_TRUE(joined_after_child);
}

TEST_F(KernelTest, SleepAdvancesSimulatedTime) {
  Task* task = kernel_.CreateTask("t");
  uint64_t t0 = 0;
  uint64_t t1 = 0;
  kernel_.CreateThread(task, "sleeper", [&](Env& env) {
    t0 = env.NowNs();
    EXPECT_EQ(env.SleepNs(1'000'000), base::Status::kOk);  // 1 ms
    t1 = env.NowNs();
  });
  kernel_.Run();
  EXPECT_GE(t1 - t0, 1'000'000u);
  EXPECT_LT(t1 - t0, 1'500'000u);  // not wildly more
}

TEST_F(KernelTest, DispatchChargesContextSwitchCosts) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  kernel_.CreateThread(a, "ta", [&](Env& env) {
    for (int i = 0; i < 5; ++i) {
      env.Yield();
    }
  });
  kernel_.CreateThread(b, "tb", [&](Env& env) {
    for (int i = 0; i < 5; ++i) {
      env.Yield();
    }
  });
  kernel_.Run();
  // Two tasks ping-ponging: every dispatch is an address-space switch.
  EXPECT_GE(kernel_.scheduler().context_switches(), 10u);
  EXPECT_GE(kernel_.scheduler().address_space_switches(), 10u);
  EXPECT_GT(machine_.cpu().tlb_stats().flushes, 9u);
}

TEST_F(KernelTest, SameTaskSwitchDoesNotFlushTlb) {
  Task* task = kernel_.CreateTask("t");
  kernel_.CreateThread(task, "a", [&](Env& env) { env.Yield(); });
  kernel_.CreateThread(task, "b", [&](Env& env) { env.Yield(); });
  const uint64_t flushes_before = machine_.cpu().tlb_stats().flushes;
  kernel_.Run();
  // First dispatch activates the task's pmap once; subsequent same-task
  // switches must not flush.
  EXPECT_LE(machine_.cpu().tlb_stats().flushes - flushes_before, 1u);
}

TEST_F(KernelTest, RunReportsBlockedThreads) {
  Task* task = kernel_.CreateTask("t");
  auto port = kernel_.PortAllocate(*task);
  ASSERT_TRUE(port.ok());
  kernel_.CreateThread(task, "stuck", [&](Env& env) {
    MachMessage msg;
    // Nobody ever sends: this thread blocks forever.
    (void)env.kernel().MachMsgReceive(*port, &msg);
  });
  EXPECT_EQ(kernel_.Run(), 1u);
}

TEST_F(KernelTest, ProcessorSetDisableParksTasks) {
  Task* task = kernel_.CreateTask("t");
  ProcessorSet* ps = kernel_.host().CreateProcessorSet("penalty-box");
  ASSERT_EQ(kernel_.host().AssignTask(*task, ps), base::Status::kOk);
  ps->set_enabled(false);
  bool ran = false;
  kernel_.CreateThread(task, "parked", [&](Env&) { ran = true; });
  Task* other = kernel_.CreateTask("other");
  kernel_.CreateThread(other, "enabler", [&](Env& env) {
    env.Compute(10);
    ps->set_enabled(true);
  });
  kernel_.Run();
  EXPECT_TRUE(ran);
}

TEST_F(KernelTest, DeterministicCycleCounts) {
  auto run_once = [] {
    hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
    Kernel kernel(&machine);
    Task* task = kernel.CreateTask("t");
    kernel.CreateThread(task, "w", [&](Env& env) {
      env.Compute(5000);
      env.SleepNs(100000);
      env.Compute(5000);
    });
    kernel.Run();
    return machine.cpu().cycles();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mk
