#include "src/mk/server_loop.h"

#include <gtest/gtest.h>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

struct AddReq {
  uint32_t op = 1;
  uint32_t a = 0;
  uint32_t b = 0;
};
struct AddRep {
  uint32_t sum = 0;
};

TEST_F(KernelTest, ServerLoopDispatchesByOpCode) {
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);

  ServerLoop loop(*recv, "calc");
  loop.Register(1, [&](Env& env, const RpcRequest& req, const uint8_t* data, const uint8_t*,
                       uint32_t) {
    AddReq r;
    std::memcpy(&r, data, sizeof(r));
    AddRep rep{r.a + r.b};
    env.RpcReply(req.token, &rep, sizeof(rep));
  });
  kernel_.CreateThread(server_task, "s", [&](Env& env) { loop.Run(env); });

  uint32_t sum = 0;
  base::Status unknown_status = base::Status::kOk;
  kernel_.CreateThread(client_task, "c", [&, send = *send](Env& env) {
    ClientStub stub("calc.client", send);
    AddReq req{1, 20, 22};
    AddRep rep;
    ASSERT_EQ(stub.Call(env, req, &rep), base::Status::kOk);
    sum = rep.sum;
    // Unknown op code gets a kNotSupported completion.
    AddReq bad{999, 0, 0};
    unknown_status = stub.Call(env, bad, &rep);
    loop.Stop();
    (void)stub.Call(env, req, &rep);  // final call lets the loop exit
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(sum, 42u);
  EXPECT_EQ(unknown_status, base::Status::kNotSupported);
}

// Stop() between receives takes effect immediately: the receive port dies,
// the parked server wakes and exits, and every later call observes kPortDead
// instead of racing against one more served request.
TEST_F(KernelTest, ServerLoopStopKillsPort) {
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
  ServerLoop loop(*recv, "oneshot");
  loop.Register(1, [&](Env& env, const RpcRequest& req, const uint8_t*, const uint8_t*, uint32_t) {
    env.RpcReply(req.token, nullptr, 0);
  });
  kernel_.CreateThread(server_task, "s", [&](Env& env) { loop.Run(env); });
  base::Status after_stop = base::Status::kOk;
  base::Status after_stop2 = base::Status::kOk;
  kernel_.CreateThread(client_task, "c", [&, send = *send](Env& env) {
    ClientStub stub("oneshot.client", send);
    uint32_t op = 1;
    uint32_t rep;
    ASSERT_EQ(stub.Call(env, op, &rep), base::Status::kOk);  // loop is serving
    loop.Stop();  // between receives: the port dies right now
    after_stop = stub.Call(env, op, &rep);
    after_stop2 = stub.Call(env, op, &rep);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(after_stop, base::Status::kPortDead);
  EXPECT_EQ(after_stop2, base::Status::kPortDead);
  EXPECT_FALSE(loop.running());
}

// A caller queued behind a busy server observes kPortDead when a handler
// stops the loop; the in-progress request still completes by token.
TEST_F(KernelTest, ServerLoopStopFailsQueuedCallers) {
  Task* server_task = kernel_.CreateTask("server");
  Task* client_task = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server_task);
  auto send = kernel_.MakeSendRight(*server_task, *recv, *client_task);
  ServerLoop loop(*recv, "shutdown");
  loop.Register(2, [&](Env& env, const RpcRequest& req, const uint8_t*, const uint8_t*, uint32_t) {
    env.Yield();  // let the second caller queue up behind us
    loop.Stop();
    env.RpcReply(req.token, nullptr, 0);
  });
  kernel_.CreateThread(server_task, "s", [&](Env& env) { loop.Run(env); });
  base::Status first = base::Status::kInternal;
  base::Status queued = base::Status::kInternal;
  kernel_.CreateThread(client_task, "c1", [&, send = *send](Env& env) {
    ClientStub stub("shutdown.c1", send);
    uint32_t op = 2;
    uint32_t rep;
    first = stub.Call(env, op, &rep);
  });
  kernel_.CreateThread(client_task, "c2", [&, send = *send](Env& env) {
    ClientStub stub("shutdown.c2", send);
    uint32_t op = 2;
    uint32_t rep;
    queued = stub.Call(env, op, &rep);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(first, base::Status::kOk);
  EXPECT_EQ(queued, base::Status::kPortDead);
}

TEST_F(KernelTest, HostInfoAndProcessorSets) {
  const HostInfo& info = kernel_.host().info();
  EXPECT_EQ(info.cpu_mhz, 133u);
  EXPECT_EQ(info.memory_bytes, 16u * 1024 * 1024);
  EXPECT_EQ(info.page_size, 4096u);
  ProcessorSet* ps = kernel_.host().CreateProcessorSet("batch");
  EXPECT_NE(ps->id(), kernel_.host().default_pset()->id());
  EXPECT_EQ(kernel_.host().FindProcessorSet(ps->id()), ps);
  EXPECT_EQ(kernel_.host().FindProcessorSet(999), nullptr);
  Task* t = kernel_.CreateTask("t");
  EXPECT_EQ(kernel_.host().AssignTask(*t, ps), base::Status::kOk);
  EXPECT_EQ(t->processor_set(), ps);
  EXPECT_EQ(ps->tasks_assigned, 1u);
  ps->set_enabled(false);
  EXPECT_EQ(kernel_.host().AssignTask(*t, ps), base::Status::kPermissionDenied);
}

}  // namespace
}  // namespace mk
