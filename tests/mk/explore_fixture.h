// Shared helpers for the schedule-exploration tests. The CI explore job
// steers these through the environment: WPOS_EXPLORE_PREEMPTION_BOUND sets
// the context bound for tests that accept one, WPOS_EXPLORE_TRACE_DIR makes
// failing runs leave their schedule traces where CI can upload them.
#ifndef TESTS_MK_EXPLORE_FIXTURE_H_
#define TESTS_MK_EXPLORE_FIXTURE_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/mk/analysis/explore/explorer.h"

namespace mk {

inline int EnvPreemptionBound(int fallback) {
  if (const char* bound = std::getenv("WPOS_EXPLORE_PREEMPTION_BOUND")) {
    return std::atoi(bound);
  }
  return fallback;
}

inline std::string EnvTraceDir() {
  if (const char* dir = std::getenv("WPOS_EXPLORE_TRACE_DIR")) {
    return dir;
  }
  return ::testing::TempDir();
}

inline analysis::explore::Result RunExploration(
    analysis::explore::Options options, analysis::explore::ScheduleExplorer::Setup setup,
    analysis::explore::ScheduleExplorer::Verify verify = nullptr) {
  if (options.trace_dir.empty()) {
    options.trace_dir = EnvTraceDir();
  }
  analysis::explore::ScheduleExplorer explorer(std::move(options), std::move(setup),
                                               std::move(verify));
  return explorer.Explore();
}

}  // namespace mk

#endif  // TESTS_MK_EXPLORE_FIXTURE_H_
