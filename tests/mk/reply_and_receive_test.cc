// Combined reply-and-receive: the server-loop fast path where the server is
// re-parked before the replied client can issue its next call.
#include <cstring>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TEST_F(KernelTest, ReplyAndReceiveServesBackToBackCalls) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  int served = 0;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    uint32_t v = 0;
    auto req = env.RpcReceive(recv, &v, sizeof(v));
    while (req.ok()) {
      ++served;
      const uint32_t reply = v * 2;
      req = env.kernel().RpcReplyAndReceive(req->token, &reply, sizeof(reply), recv, &v,
                                            sizeof(v));
    }
  });
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    for (uint32_t i = 1; i <= 10; ++i) {
      uint32_t r = 0;
      ASSERT_EQ(env.RpcCall(send, &i, sizeof(i), &r, sizeof(r)), base::Status::kOk);
      ASSERT_EQ(r, i * 2);
    }
    ASSERT_EQ(env.kernel().PortDestroy(*server, *recv), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(served, 10);
}

TEST_F(KernelTest, ReplyAndReceiveBeatsReplyThenReceiveUnderLoad) {
  // With a background thread competing for the CPU, the combined call keeps
  // the rendezvous handoff chain intact; the split sequence loses it.
  auto measure = [&](bool combined) {
    hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
    Kernel kernel(&machine);
    Task* server_task = kernel.CreateTask("server");
    Task* client_task = kernel.CreateTask("client");
    Task* bg_task = kernel.CreateTask("bg");
    auto recv = kernel.PortAllocate(*server_task);
    auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
    bool stop = false;
    kernel.CreateThread(bg_task, "spin", [&](Env& env) {
      while (!stop) {
        env.Compute(600);
        env.Yield();
      }
    });
    kernel.CreateThread(server_task, "s", [&, recv = *recv](Env& env) {
      char buf[32];
      auto req = env.RpcReceive(recv, buf, sizeof(buf));
      while (req.ok()) {
        if (combined) {
          req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, recv, buf, sizeof(buf));
        } else {
          env.RpcReply(req->token, nullptr, 0);
          req = env.RpcReceive(recv, buf, sizeof(buf));
        }
      }
    });
    uint64_t cycles = 0;
    kernel.CreateThread(client_task, "c", [&, send = *send](Env& env) {
      char payload[16] = {};
      char reply[16];
      for (int i = 0; i < 30; ++i) {
        (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
      }
      const uint64_t c0 = kernel.cpu().cycles();
      for (int i = 0; i < 100; ++i) {
        (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
      }
      cycles = (kernel.cpu().cycles() - c0) / 100;
      stop = true;
      (void)kernel.PortDestroy(*server_task, *recv);
    });
    kernel.Run();
    return cycles;
  };
  const uint64_t combined = measure(true);
  const uint64_t split = measure(false);
  EXPECT_LT(combined + combined / 5, split)
      << "combined reply+receive must be >20% faster under load";
}

TEST_F(KernelTest, ReplyAndReceiveWorksOnPortSets) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto set = kernel_.PortSetAllocate(*server);
  auto p1 = kernel_.PortAllocate(*server);
  auto p2 = kernel_.PortAllocate(*server);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p1), base::Status::kOk);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p2), base::Status::kOk);
  auto s1 = kernel_.MakeSendRight(*server, *p1, *client);
  auto s2 = kernel_.MakeSendRight(*server, *p2, *client);
  int served = 0;
  kernel_.CreateThread(server, "s", [&, set = *set](Env& env) {
    char buf[16];
    auto req = env.RpcReceive(set, buf, sizeof(buf));
    while (req.ok()) {
      ++served;
      req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, set, buf, sizeof(buf));
    }
  });
  kernel_.CreateThread(client, "c", [&, s1 = *s1, s2 = *s2](Env& env) {
    char reply[8];
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(env.RpcCall(s1, "a", 1, reply, sizeof(reply)), base::Status::kOk);
      ASSERT_EQ(env.RpcCall(s2, "b", 1, reply, sizeof(reply)), base::Status::kOk);
    }
    ASSERT_EQ(env.kernel().PortDestroy(*server, *set), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(served, 6);
}

// Regression found by schedule exploration: when a client's request queued
// up while the server was busy and then failed delivery (too large for the
// posted buffers), RpcReplyAndReceive neither woke that client nor told the
// server — the client blocked forever and the returned RpcRequest carried a
// stale token. The oversized caller must get kTooLarge, the replied client
// must still complete, and the server must be able to keep serving.
TEST_F(KernelTest, ReplyAndReceiveFailsOversizedQueuedRequestWithoutStranding) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  int served = 0;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    uint32_t v = 0;
    auto req = env.RpcReceive(recv, &v, sizeof(v));
    ASSERT_TRUE(req.ok());
    ++served;
    env.Yield();  // let the oversized and the follow-up call queue behind us
    const uint32_t reply = v * 2;
    auto next = env.kernel().RpcReplyAndReceive(req->token, &reply, sizeof(reply), recv, &v,
                                                sizeof(v));
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status(), base::Status::kTooLarge);
    // The loop is still healthy: the small follow-up request is next in line.
    next = env.RpcReceive(recv, &v, sizeof(v));
    ASSERT_TRUE(next.ok());
    ++served;
    const uint32_t reply2 = v * 2;
    ASSERT_EQ(env.RpcReply(next->token, &reply2, sizeof(reply2)), base::Status::kOk);
    ASSERT_EQ(env.kernel().PortDestroy(*server, recv), base::Status::kOk);
  });
  kernel_.CreateThread(client, "small1", [&, send = *send](Env& env) {
    uint32_t req = 3, r = 0;
    ASSERT_EQ(env.RpcCall(send, &req, sizeof(req), &r, sizeof(r)), base::Status::kOk);
    EXPECT_EQ(r, 6u);
  });
  kernel_.CreateThread(client, "huge", [&, send = *send](Env& env) {
    char big[64] = {0};
    uint32_t r = 0;
    EXPECT_EQ(env.RpcCall(send, big, sizeof(big), &r, sizeof(r)), base::Status::kTooLarge);
  });
  kernel_.CreateThread(client, "small2", [&, send = *send](Env& env) {
    uint32_t req = 5, r = 0;
    ASSERT_EQ(env.RpcCall(send, &req, sizeof(req), &r, sizeof(r)), base::Status::kOk);
    EXPECT_EQ(r, 10u);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(served, 2);
}

}  // namespace
}  // namespace mk
