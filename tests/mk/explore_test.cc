// Tests for the systematic concurrency checker: schedule-space exploration,
// deadlock discovery with replay, partial-order reduction, the guarded
// seeded-tally workload (clean in this build; its mutation twin lives in
// explore_selftest.cc), and the zero-cost guarantee for the monitor.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/hw/machine.h"
#include "src/mk/analysis/explore/explorer.h"
#include "src/mk/analysis/explore/monitor.h"
#include "src/mk/analysis/explore/selftest.h"
#include "src/mk/kernel.h"
#include "tests/mk/explore_fixture.h"

namespace mk {
namespace {

using analysis::explore::Options;
using analysis::explore::Result;
using analysis::explore::ScheduleExplorer;
using analysis::explore::ScheduleTrace;

// Exhaustive schedule count for the two-thread semaphore workload. This is a
// fixed property of the kernel's switch points — a change means dispatch
// decisions were added or removed, which deserves a deliberate update.
constexpr uint64_t kTwoThreadSemSchedules = 14;

// Two threads contending for one binary semaphore, each touching a shared
// cell inside the critical section. Small enough to enumerate exhaustively.
void TwoThreadSemaphoreWorkload(Kernel& kernel) {
  auto sem = kernel.SemCreate(1);
  ASSERT_TRUE(sem.ok());
  const uint32_t sem_id = *sem;
  const hw::PhysAddr cell = kernel.heap().Allocate(64);
  Task* task = kernel.CreateTask("workload");
  for (int i = 0; i < 2; ++i) {
    kernel.CreateThread(task, "worker" + std::to_string(i), [sem_id, cell](Env& env) {
      Kernel& k = env.kernel();
      EXPECT_EQ(k.SemWait(sem_id), base::Status::kOk);
      k.ChargeKernelData(cell, 8, /*write=*/true);
      EXPECT_EQ(k.SemSignal(sem_id), base::Status::kOk);
    });
  }
}

TEST(ExploreTest, TwoThreadSemaphoreExhaustive) {
  Options options;
  options.name = "two_thread_sem";
  options.preemption_bound = -1;  // fully exhaustive, independent of CI bound
  options.partial_order_reduction = false;
  Result result = RunExploration(options, TwoThreadSemaphoreWorkload);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f.kind << ": " << f.message;
  }
  EXPECT_FALSE(result.hit_schedule_cap);
  EXPECT_TRUE(result.races.empty());
  EXPECT_TRUE(result.lock_order_cycles.empty());
  // The schedule space of this workload is a fixed property of the kernel's
  // switch points; a change here means dispatch decisions were added or lost.
  WPOS_CHECK(result.schedules > 1) << "explorer degenerated to a single schedule";
  WPOS_LOG(kInfo) << "two_thread_sem: " << result.schedules << " schedules, " << result.decisions
                  << " decisions";
  EXPECT_EQ(result.schedules, kTwoThreadSemSchedules);

  // Determinism: the same workload explores to the identical count.
  Result again = RunExploration(options, TwoThreadSemaphoreWorkload);
  EXPECT_EQ(again.schedules, result.schedules);
  EXPECT_EQ(again.decisions, result.decisions);
}

// Classic ABBA deadlock: only some interleavings die, and the explorer must
// find one, leave a replayable schedule, and the lock-order graph — built
// from the clean runs explored before the failing one — must show the
// inverted-order cycle. Thread "ab" takes both locks back to back, so the
// default round-robin schedule completes cleanly and records both edges;
// the deadlock needs "ba" to hold B across its yield while "ab" runs.
void AbbaWorkload(Kernel& kernel) {
  auto a = kernel.SemCreate(1);
  auto b = kernel.SemCreate(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Task* task = kernel.CreateTask("abba");
  kernel.CreateThread(task, "ab", [a = *a, b = *b](Env& env) {
    Kernel& k = env.kernel();
    k.SemWait(a);
    k.SemWait(b);
    k.SemSignal(b);
    k.SemSignal(a);
  });
  kernel.CreateThread(task, "ba", [a = *a, b = *b](Env& env) {
    Kernel& k = env.kernel();
    k.SemWait(b);
    env.Yield();
    k.SemWait(a);
    k.SemSignal(a);
    k.SemSignal(b);
  });
}

TEST(ExploreTest, FindsAbbaDeadlockAndReplaysIt) {
  const std::string trace_dir = ::testing::TempDir() + "/explore_abba";
  Options options;
  options.name = "abba";
  options.preemption_bound = 0;  // voluntary switches alone reach the deadlock
  options.trace_dir = trace_dir;
  Result result = RunExploration(options, AbbaWorkload);
  ASSERT_FALSE(result.ok());
  const auto& failure = result.failures.front();
  EXPECT_EQ(failure.kind, "deadlock");
  EXPECT_FALSE(failure.message.empty());
  EXPECT_FALSE(failure.schedule.decisions.empty());
  ASSERT_FALSE(failure.schedule_file.empty());

  // The failing schedule replays deterministically to the same failure, and
  // the replay renders a Chrome trace of the interleaving.
  const std::string chrome = trace_dir + "/abba.replay.trace.json";
  std::string message;
  ASSERT_TRUE(ScheduleExplorer::Replay(failure.schedule_file, AbbaWorkload, nullptr, &message,
                                       chrome));
  EXPECT_EQ(message.rfind("deadlock", 0), 0u) << message;
  EXPECT_TRUE(std::filesystem::exists(chrome));
  EXPECT_TRUE(std::filesystem::exists(trace_dir + "/abba.failing.trace.json"));
  std::string again;
  ASSERT_TRUE(
      ScheduleExplorer::Replay(failure.schedule_file, AbbaWorkload, nullptr, &again));
  EXPECT_EQ(again, message);

  // Cross-run lock-order analysis names the inverted pair.
  ASSERT_FALSE(result.lock_order_cycles.empty());
  EXPECT_NE(result.lock_order_cycles.front().find("sem"), std::string::npos);
}

// Threads touching disjoint cells commute; the POR must prune schedules that
// only reorder independent steps, without losing soundness (still clean).
void DisjointCellsWorkload(Kernel& kernel) {
  Task* task = kernel.CreateTask("disjoint");
  for (int i = 0; i < 3; ++i) {
    const hw::PhysAddr cell = kernel.heap().Allocate(64);
    kernel.CreateThread(task, "t" + std::to_string(i), [cell](Env& env) {
      Kernel& k = env.kernel();
      k.ChargeKernelData(cell, 8, /*write=*/true);
      env.Yield();
      k.ChargeKernelData(cell, 8, /*write=*/true);
    });
  }
}

TEST(ExploreTest, PartialOrderReductionPrunesCommutingSchedules) {
  Options options;
  options.name = "por_off";
  options.preemption_bound = 0;
  options.partial_order_reduction = false;
  Result full = RunExploration(options, DisjointCellsWorkload);
  EXPECT_TRUE(full.ok());
  EXPECT_EQ(full.pruned, 0u);

  options.name = "por_on";
  options.partial_order_reduction = true;
  Result reduced = RunExploration(options, DisjointCellsWorkload);
  EXPECT_TRUE(reduced.ok());
  EXPECT_GT(reduced.pruned, 0u);
  EXPECT_LT(reduced.schedules, full.schedules);
  WPOS_LOG(kInfo) << "POR: " << full.schedules << " schedules without, " << reduced.schedules
                  << " with (" << reduced.pruned << " pruned)";
}

// Regression for the dead-thread-wakeup class: a task is terminated while a
// client is mid-RPC to it. Every interleaving must leave the system halt
// clean — a client left blocked forever shows up as a deadlock at halt.
void TerminateUnderRpcWorkload(Kernel& kernel) {
  Task* server = kernel.CreateTask("server");
  Task* client = kernel.CreateTask("client");
  Task* killer = kernel.CreateTask("killer");
  auto recv = kernel.PortAllocate(*server);
  ASSERT_TRUE(recv.ok());
  auto send = kernel.MakeSendRight(*server, *recv, *client);
  ASSERT_TRUE(send.ok());
  kernel.CreateThread(server, "srv", [recv = *recv](Env& env) {
    char buf[16];
    auto request = env.RpcReceive(recv, buf, sizeof(buf));
    if (request.ok()) {
      uint32_t reply = 0;
      env.RpcReply(request->token, &reply, sizeof(reply));
    }
  });
  kernel.CreateThread(client, "cli", [send = *send](Env& env) {
    uint32_t req = 7;
    uint32_t reply = 0;
    // Any status is legal — served, kPortDead, kAborted — but the call must
    // complete under every schedule.
    (void)env.RpcCall(send, &req, sizeof(req), &reply, sizeof(reply));
  });
  kernel.CreateThread(killer, "kill", [server](Env& env) {
    env.Yield();
    env.kernel().TerminateTask(server);
  });
}

TEST(ExploreTest, TerminateTaskUnderExplorationLeavesNoStuckThreads) {
  Options options;
  options.name = "terminate_rpc";
  options.preemption_bound = EnvPreemptionBound(2);
  Result result = RunExploration(options, TerminateUnderRpcWorkload);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f.kind << ": " << f.message << "\nschedule:\n" << f.schedule.ToString();
  }
  EXPECT_GT(result.schedules, 1u);
  EXPECT_FALSE(result.hit_schedule_cap);
}

// The guarded seeded-tally workload (the mutation twin of explore_selftest)
// must explore clean in the normal build: the semaphore orders every
// read-modify-write, so no schedule loses an update and no race is flagged.
TEST(ExploreTest, GuardedTallyExploresClean) {
  auto slot = std::make_shared<std::shared_ptr<analysis::explore::SeededTally>>();
  Options options;
  options.name = "guarded_tally";
  options.preemption_bound = EnvPreemptionBound(2);
  Result result = RunExploration(
      options, [slot](Kernel& kernel) { *slot = analysis::explore::InstallSeededTally(kernel); },
      [slot](Kernel&, std::string* message) {
        if ((*slot)->value != 2) {
          *message = "lost update: tally = " + std::to_string((*slot)->value);
          return false;
        }
        return true;
      });
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f.kind << ": " << f.message;
  }
  EXPECT_TRUE(result.races.empty());
  EXPECT_GT(result.schedules, 1u);
}

// Zero-cost guarantee: attaching the monitor (observer hooks live, no policy
// installed) must not change a single simulated counter or context switch.
TEST(ExploreTest, MonitorObservationChargesNothing) {
  auto run = [](bool with_monitor, hw::CpuCounters* counters, uint64_t* switches) {
    hw::MachineConfig config;
    config.ram_bytes = 16ull * 1024 * 1024;
    hw::Machine machine(config);
    Kernel kernel(&machine);
    analysis::explore::ConcurrencyMonitor monitor;
    if (with_monitor) {
      monitor.Attach(kernel);
      monitor.ResetRun(/*race_detection=*/true);
    }
    TwoThreadSemaphoreWorkload(kernel);
    EXPECT_EQ(kernel.Run(), 0u);
    *counters = kernel.cpu().counters();
    *switches = kernel.scheduler().context_switches();
    if (with_monitor) {
      monitor.Detach();
    }
  };
  hw::CpuCounters plain{}, observed{};
  uint64_t plain_switches = 0, observed_switches = 0;
  run(false, &plain, &plain_switches);
  run(true, &observed, &observed_switches);
  EXPECT_EQ(plain.instructions, observed.instructions);
  EXPECT_EQ(plain.cycles, observed.cycles);
  EXPECT_EQ(plain.data_accesses, observed.data_accesses);
  EXPECT_EQ(plain.dcache_misses, observed.dcache_misses);
  EXPECT_EQ(plain_switches, observed_switches);
}

TEST(ExploreTest, ScheduleTraceRoundTripsThroughFile) {
  ScheduleTrace trace;
  trace.decisions.push_back({2, {2, 3}, false});
  trace.decisions.push_back({3, {2, 3, 4}, true});
  const std::string path = ::testing::TempDir() + "/roundtrip.schedule";
  ASSERT_TRUE(trace.Save(path));
  ScheduleTrace loaded;
  ASSERT_TRUE(ScheduleTrace::Load(path, &loaded));
  ASSERT_EQ(loaded.decisions.size(), 2u);
  EXPECT_EQ(loaded.decisions[0].chosen, 2u);
  EXPECT_EQ(loaded.decisions[0].candidates, (std::vector<uint64_t>{2, 3}));
  EXPECT_FALSE(loaded.decisions[0].preempt_point);
  EXPECT_EQ(loaded.decisions[1].chosen, 3u);
  EXPECT_TRUE(loaded.decisions[1].preempt_point);
}

}  // namespace
}  // namespace mk
