#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

// Spawns a one-shot echo server on `server_task`; returns the send right the
// client should use.
PortName SpawnEchoServer(Kernel& kernel, Task* server_task, Task* client_task, int calls) {
  auto recv = kernel.PortAllocate(*server_task);
  EXPECT_TRUE(recv.ok());
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  EXPECT_TRUE(send.ok());
  kernel.CreateThread(server_task, "echo-server", [&kernel, recv = *recv, calls](Env& env) {
    char buf[256];
    for (int i = 0; i < calls; ++i) {
      auto req = env.RpcReceive(recv, buf, sizeof(buf));
      if (!req.ok()) {
        return;
      }
      env.RpcReply(req->token, buf, req->req_len);
    }
  });
  return *send;
}

TEST_F(KernelTest, RpcEchoRoundTrip) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  PortName port = SpawnEchoServer(kernel_, server, client, 1);
  std::string got;
  kernel_.CreateThread(client, "caller", [&](Env& env) {
    const char msg[] = "hello wpos";
    char reply[64] = {};
    uint32_t reply_len = 0;
    ASSERT_EQ(env.RpcCall(port, msg, sizeof(msg), reply, sizeof(reply), &reply_len),
              base::Status::kOk);
    EXPECT_EQ(reply_len, sizeof(msg));
    got = reply;
  });
  kernel_.Run();
  EXPECT_EQ(got, "hello wpos");
}

TEST_F(KernelTest, RpcWorksWhicheverSideArrivesFirst) {
  for (bool server_first : {true, false}) {
    hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
    Kernel kernel(&machine);
    Task* server = kernel.CreateTask("server");
    Task* client = kernel.CreateTask("client");
    auto recv = kernel.PortAllocate(*server);
    auto send = kernel.MakeSendRight(*server, *recv, *client);
    int replies = 0;
    auto server_body = [&, recv = *recv](Env& env) {
      char buf[64];
      auto req = env.RpcReceive(recv, buf, sizeof(buf));
      ASSERT_TRUE(req.ok());
      env.RpcReply(req->token, buf, req->req_len);
    };
    auto client_body = [&, send = *send](Env& env) {
      uint32_t v = 7;
      uint32_t r = 0;
      ASSERT_EQ(env.RpcCall(send, &v, sizeof(v), &r, sizeof(r)), base::Status::kOk);
      EXPECT_EQ(r, 7u);
      ++replies;
    };
    if (server_first) {
      kernel.CreateThread(server, "s", server_body);
      kernel.CreateThread(client, "c", client_body);
    } else {
      kernel.CreateThread(client, "c", client_body);
      kernel.CreateThread(server, "s", server_body);
    }
    EXPECT_EQ(kernel.Run(), 0u);
    EXPECT_EQ(replies, 1);
  }
}

TEST_F(KernelTest, RpcTooLargeRequestFails) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char tiny[8];
    auto req = env.RpcReceive(recv, tiny, sizeof(tiny));
    // Delivery of the oversized request fails server-side with kTooLarge.
    EXPECT_FALSE(req.ok());
  });
  base::Status st = base::Status::kOk;
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    char big[128] = {};
    char reply[8];
    st = env.RpcCall(send, big, sizeof(big), reply, sizeof(reply));
  });
  kernel_.Run();
  EXPECT_EQ(st, base::Status::kTooLarge);
}

TEST_F(KernelTest, RpcByReferenceBulkData) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  std::vector<uint8_t> server_seen;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    std::vector<uint8_t> bulk(8192);
    RpcRef ref;
    ref.recv_buf = bulk.data();
    ref.recv_cap = static_cast<uint32_t>(bulk.size());
    auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
    ASSERT_TRUE(req.ok());
    ASSERT_EQ(req->ref_len, 4096u);
    server_seen.assign(bulk.begin(), bulk.begin() + req->ref_len);
    // Reply with transformed bulk data.
    for (auto& b : server_seen) {
      b ^= 0xff;
    }
    env.RpcReply(req->token, buf, req->req_len, server_seen.data(),
                 static_cast<uint32_t>(server_seen.size()));
  });
  std::vector<uint8_t> reply_bulk(8192);
  uint32_t reply_bulk_len = 0;
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    std::vector<uint8_t> data(4096);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i);
    }
    RpcRef ref;
    ref.send_data = data.data();
    ref.send_len = static_cast<uint32_t>(data.size());
    ref.recv_buf = reply_bulk.data();
    ref.recv_cap = static_cast<uint32_t>(reply_bulk.size());
    uint32_t hdr = 1;
    uint32_t rep = 0;
    ASSERT_EQ(env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref),
              base::Status::kOk);
    reply_bulk_len = ref.recv_len;
  });
  kernel_.Run();
  ASSERT_EQ(server_seen.size(), 4096u);
  ASSERT_EQ(reply_bulk_len, 4096u);
  EXPECT_EQ(reply_bulk[10], static_cast<uint8_t>(10 ^ 0xff));
}

TEST_F(KernelTest, RpcTransfersRightsBothWays) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  // The client sends a right to a port it owns; the server grants back a
  // right to a fresh "session" port.
  auto client_port = kernel_.PortAllocate(*client);
  ASSERT_TRUE(client_port.ok());
  Port* session_port_raw = nullptr;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    ASSERT_TRUE(req.ok());
    ASSERT_EQ(req->rights.size(), 1u);
    // The transferred right must reference the client's port.
    auto p = env.kernel().ResolvePort(env.task(), req->rights[0]);
    ASSERT_TRUE(p.ok());
    auto session = env.PortAllocate();
    ASSERT_TRUE(session.ok());
    session_port_raw = *env.kernel().ResolvePort(env.task(), *session);
    env.RpcReply(req->token, buf, req->req_len, nullptr, 0, /*grant=*/*session);
  });
  PortName granted = kNullPort;
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    uint32_t hdr = 1;
    uint32_t rep = 0;
    RightDescriptor rd{.name = *client_port, .disposition = RightType::kSend};
    ASSERT_EQ(env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, nullptr, &rd, 1,
                          &granted),
              base::Status::kOk);
  });
  kernel_.Run();
  ASSERT_NE(granted, kNullPort);
  auto resolved = kernel_.ResolvePort(*client, granted);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, session_port_raw);
}

TEST_F(KernelTest, RpcServerServesManyClients) {
  Task* server = kernel_.CreateTask("server");
  constexpr int kClients = 5;
  constexpr int kCallsEach = 4;
  auto recv = kernel_.PortAllocate(*server);
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    for (int i = 0; i < kClients * kCallsEach; ++i) {
      auto req = env.RpcReceive(recv, buf, sizeof(buf));
      ASSERT_TRUE(req.ok());
      uint32_t v;
      std::memcpy(&v, buf, sizeof(v));
      v *= 2;
      env.RpcReply(req->token, &v, sizeof(v));
    }
  });
  int ok_count = 0;
  for (int c = 0; c < kClients; ++c) {
    Task* client = kernel_.CreateTask("client" + std::to_string(c));
    auto send = kernel_.MakeSendRight(*server, *recv, *client);
    kernel_.CreateThread(client, "c", [&, send = *send, c](Env& env) {
      for (int i = 0; i < kCallsEach; ++i) {
        uint32_t v = static_cast<uint32_t>(c * 100 + i);
        uint32_t r = 0;
        ASSERT_EQ(env.RpcCall(send, &v, sizeof(v), &r, sizeof(r)), base::Status::kOk);
        ASSERT_EQ(r, v * 2);
        ++ok_count;
      }
    });
  }
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(ok_count, kClients * kCallsEach);
}

TEST_F(KernelTest, RpcOolPicksTransferModeBySizeAndSetsFlags) {
  // Ref payloads at/above the OOL threshold move as page references; below
  // it they use the copy loop. Both directions record which path ran.
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  constexpr uint32_t kBig = 16 * 1024;   // >= threshold: OOL
  constexpr uint32_t kSmall = 512;       // < threshold: copy
  bool server_saw_ool_request = false;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    std::vector<uint8_t> bulk(kBig);
    for (int i = 0; i < 2; ++i) {
      RpcRef ref;
      ref.recv_buf = bulk.data();
      ref.recv_cap = static_cast<uint32_t>(bulk.size());
      auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
      ASSERT_TRUE(req.ok());
      if (i == 0) {
        server_saw_ool_request = ref.recv_ool;
        // Content must be intact regardless of transfer mode.
        EXPECT_EQ(bulk[0], 0xab);
        EXPECT_EQ(bulk[kBig - 1], 0xab);
      } else {
        EXPECT_FALSE(ref.recv_ool) << "small payload must stay inline";
      }
      // Echo the same bytes back.
      env.RpcReply(req->token, buf, req->req_len, bulk.data(), req->ref_len);
    }
  });
  bool big_sent_ool = false;
  bool big_recv_ool = false;
  bool small_sent_ool = true;
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    std::vector<uint8_t> data(kBig, 0xab);
    std::vector<uint8_t> back(kBig);
    uint32_t hdr = 1;
    uint32_t rep = 0;
    RpcRef ref;
    ref.send_data = data.data();
    ref.send_len = kBig;
    ref.recv_buf = back.data();
    ref.recv_cap = kBig;
    ASSERT_EQ(env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref),
              base::Status::kOk);
    big_sent_ool = ref.sent_ool;
    big_recv_ool = ref.recv_ool;
    EXPECT_EQ(ref.recv_len, kBig);
    EXPECT_EQ(back[kBig / 2], 0xab);

    RpcRef small;
    small.send_data = data.data();
    small.send_len = kSmall;
    small.recv_buf = back.data();
    small.recv_cap = kBig;
    ASSERT_EQ(env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &small),
              base::Status::kOk);
    small_sent_ool = small.sent_ool;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(big_sent_ool);
  EXPECT_TRUE(big_recv_ool);
  EXPECT_TRUE(server_saw_ool_request);
  EXPECT_FALSE(small_sent_ool);
  EXPECT_GE(kernel_.tracer().metrics().Counter("mk.rpc.ool_transfers"), 2u);
  EXPECT_GE(kernel_.tracer().metrics().Counter("mk.rpc.ool_bytes"), 2u * kBig);
}

TEST_F(KernelTest, RpcOolReplyIsSnapshotOfSenderBuffer) {
  // Snapshot semantics for the reply-direction OOL transfer: once RpcReply
  // returns, the server may reuse its bulk buffer; the client must see the
  // bytes as they were at reply time, not the later mutation.
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  constexpr uint32_t kBytes = 8 * 1024;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    std::vector<uint8_t> bulk(kBytes, 0xcd);
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    ASSERT_TRUE(req.ok());
    env.RpcReply(req->token, buf, req->req_len, bulk.data(), kBytes);
    // Mutate AFTER replying: must not leak into the client's copy.
    std::fill(bulk.begin(), bulk.end(), 0x00);
  });
  std::vector<uint8_t> got(kBytes);
  bool was_ool = false;
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    uint32_t hdr = 1;
    uint32_t rep = 0;
    RpcRef ref;
    ref.recv_buf = got.data();
    ref.recv_cap = kBytes;
    ASSERT_EQ(env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref),
              base::Status::kOk);
    ASSERT_EQ(ref.recv_len, kBytes);
    was_ool = ref.recv_ool;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(was_ool);
  EXPECT_EQ(got[0], 0xcd);
  EXPECT_EQ(got[kBytes - 1], 0xcd);
}

TEST_F(KernelTest, RpcOolCheaperThanForcedCopyForLargePayloads) {
  // The tentpole claim: above the threshold the page-reference transfer
  // beats the per-byte copy loop. Force kCopy on one batch, let kAuto pick
  // OOL on the other, and compare cycles for identical traffic.
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  constexpr uint32_t kBytes = 16 * 1024;
  constexpr int kIters = 20;
  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    std::vector<uint8_t> bulk(kBytes);
    for (int i = 0; i < 2 * kIters; ++i) {
      RpcRef ref;
      ref.recv_buf = bulk.data();
      ref.recv_cap = kBytes;
      auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
      ASSERT_TRUE(req.ok());
      env.RpcReply(req->token, buf, req->req_len);
    }
  });
  uint64_t copy_cycles = 0;
  uint64_t ool_cycles = 0;
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    std::vector<uint8_t> data(kBytes, 0x5a);
    uint32_t hdr = 1;
    uint32_t rep = 0;
    auto run = [&](RpcBulkMode mode) -> uint64_t {
      const uint64_t c0 = env.kernel().cpu().cycles();
      for (int i = 0; i < kIters; ++i) {
        RpcRef ref;
        ref.send_data = data.data();
        ref.send_len = kBytes;
        ref.send_mode = mode;
        EXPECT_EQ(env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref),
                  base::Status::kOk);
        EXPECT_EQ(ref.sent_ool, mode != RpcBulkMode::kCopy);
      }
      return env.kernel().cpu().cycles() - c0;
    };
    copy_cycles = run(RpcBulkMode::kCopy);
    ool_cycles = run(RpcBulkMode::kAuto);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(ool_cycles, 0u);
  EXPECT_LT(ool_cycles, copy_cycles)
      << "16 KB by reference should be cheaper out-of-line than copied";
}

TEST_F(KernelTest, RpcCheaperThanLegacyIpcRoundTrip) {
  // The core claim of the IPC rework: a synchronous RPC round trip costs
  // less than the equivalent mach_msg request/reply with a reply port.
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  uint64_t rpc_cycles = 0;
  uint64_t ipc_cycles = 0;

  kernel_.CreateThread(server, "s", [&, recv = *recv](Env& env) {
    char buf[64];
    for (int i = 0; i < 200; ++i) {
      auto req = env.RpcReceive(recv, buf, sizeof(buf));
      ASSERT_TRUE(req.ok());
      env.RpcReply(req->token, buf, req->req_len);
    }
    // Legacy phase: receive + explicit reply message.
    for (int i = 0; i < 200; ++i) {
      MachMessage msg;
      ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
      MachMessage reply;
      reply.dest = msg.reply_port;
      reply.inline_data = msg.inline_data;
      ASSERT_EQ(env.kernel().MachMsgSend(std::move(reply)), base::Status::kOk);
    }
  });
  kernel_.CreateThread(client, "c", [&, send = *send](Env& env) {
    char payload[32] = {};
    char reply[64];
    // Warm up, then measure 100 RPC round trips.
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply)),
                base::Status::kOk);
    }
    uint64_t c0 = env.kernel().cpu().cycles();
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply)),
                base::Status::kOk);
    }
    rpc_cycles = env.kernel().cpu().cycles() - c0;

    auto reply_port = env.PortAllocate();
    ASSERT_TRUE(reply_port.ok());
    auto do_legacy = [&](int iters) {
      for (int i = 0; i < iters; ++i) {
        MachMessage msg;
        msg.dest = send;
        msg.reply_port = *reply_port;
        msg.inline_data.assign(payload, payload + sizeof(payload));
        ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
        MachMessage rep;
        ASSERT_EQ(env.kernel().MachMsgReceive(*reply_port, &rep), base::Status::kOk);
      }
    };
    do_legacy(100);
    c0 = env.kernel().cpu().cycles();
    do_legacy(100);
    ipc_cycles = env.kernel().cpu().cycles() - c0;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_GT(rpc_cycles, 0u);
  EXPECT_GT(ipc_cycles, rpc_cycles * 3 / 2)
      << "legacy IPC should cost well over 1.5x the reworked RPC";
}

}  // namespace
}  // namespace mk
