#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TEST_F(KernelTest, PortAllocateGivesReceiveRight) {
  Task* task = kernel_.CreateTask("t");
  auto name = kernel_.PortAllocate(*task);
  ASSERT_TRUE(name.ok());
  auto port = task->port_space().LookupReceive(*name);
  ASSERT_TRUE(port.ok());
  EXPECT_EQ((*port)->receiver(), task);
}

TEST_F(KernelTest, PortNamesAreTaskLocal) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto na = kernel_.PortAllocate(*a);
  ASSERT_TRUE(na.ok());
  // The same numeric name means nothing in another task's space.
  EXPECT_EQ(b->port_space().LookupReceive(*na).status(), base::Status::kInvalidName);
}

TEST_F(KernelTest, MakeSendRightAllowsSending) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  ASSERT_TRUE(recv.ok());
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  ASSERT_TRUE(send.ok());
  auto port = client->port_space().LookupSendable(*send);
  ASSERT_TRUE(port.ok());
  auto sp = kernel_.ResolvePort(*server, *recv);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(*port, *sp);
}

TEST_F(KernelTest, SendRightsCoalesceUnderOneName) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto s1 = kernel_.MakeSendRight(*server, *recv, *client);
  auto s2 = kernel_.MakeSendRight(*server, *recv, *client);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);  // Mach semantics: one name per port for send rights
  auto right = client->port_space().Lookup(*s1);
  ASSERT_TRUE(right.ok());
  EXPECT_EQ((*right)->refs, 2u);
  EXPECT_EQ(client->port_space().Release(*s1), base::Status::kOk);
  EXPECT_TRUE(client->port_space().Lookup(*s1).ok());  // one ref left
  EXPECT_EQ(client->port_space().Release(*s1), base::Status::kOk);
  EXPECT_FALSE(client->port_space().Lookup(*s1).ok());
}

TEST_F(KernelTest, PortDestroyMakesItDead) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  ASSERT_TRUE(send.ok());
  ASSERT_EQ(kernel_.PortDestroy(*server, *recv), base::Status::kOk);
  EXPECT_EQ(client->port_space().LookupSendable(*send).status(), base::Status::kPortDead);
}

TEST_F(KernelTest, DestroyedPortFailsRpcCallers) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  base::Status observed = base::Status::kOk;
  kernel_.CreateThread(client, "caller", [&](Env& env) {
    uint32_t req = 1;
    uint32_t rep = 0;
    observed = env.RpcCall(*send, &req, sizeof(req), &rep, sizeof(rep));
  });
  kernel_.CreateThread(server, "destroyer", [&](Env& env) {
    env.Yield();  // let the caller queue first
    EXPECT_EQ(env.kernel().PortDestroy(*server, *recv), base::Status::kOk);
  });
  kernel_.Run();
  EXPECT_EQ(observed, base::Status::kPortDead);
}

TEST_F(KernelTest, LookupWrongRightTypeFails) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  ASSERT_TRUE(send.ok());
  EXPECT_EQ(client->port_space().LookupReceive(*send).status(), base::Status::kInvalidRight);
}

TEST_F(KernelTest, ThreadSelfIsStable) {
  Task* task = kernel_.CreateTask("t");
  PortName first = kNullPort;
  PortName second = kNullPort;
  kernel_.CreateThread(task, "w", [&](Env& env) {
    first = env.ThreadSelf();
    second = env.ThreadSelf();
  });
  kernel_.Run();
  EXPECT_NE(first, kNullPort);
  EXPECT_EQ(first, second);
}

TEST_F(KernelTest, TaskSelfReturnsOwnId) {
  Task* task = kernel_.CreateTask("t");
  TaskId id = 0;
  kernel_.CreateThread(task, "w", [&](Env& env) { id = env.kernel().TrapTaskSelf(); });
  kernel_.Run();
  EXPECT_EQ(id, task->id());
}

}  // namespace
}  // namespace mk
