// Schedule exploration over the mmap fault path: two threads of one task
// storing into the same MAP_PRIVATE page concurrently. A private mapping is
// an anonymous shadow object over the file-backed object (see
// UnixProcess::Mmap), so the racing stores both drive copy-on-write faults
// against the same shadow page. Under every interleaving within the
// preemption bound, neither store may be lost, no schedule may deadlock, and
// the lockset/race analysis must stay quiet.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/hw/machine.h"
#include "src/mk/analysis/explore/explorer.h"
#include "src/mk/kernel.h"
#include "src/mk/vm_object.h"
#include "tests/mk/explore_fixture.h"

namespace mk {
namespace {

using analysis::explore::Options;
using analysis::explore::Result;

constexpr uint8_t kStoreA = 0xA1;
constexpr uint8_t kStoreB = 0xB2;
// Same page — so the two threads race on the copy-on-write fault — but
// distinct 16-byte cells, so the accesses themselves are not a user-level
// data race and the lockset analysis must stay quiet.
constexpr uint64_t kOffsetA = 0;
constexpr uint64_t kOffsetB = 64;

// Per-schedule workload state; Setup runs once per explored schedule with a
// fresh kernel, so everything here is rebuilt each time.
struct PrivateFaultState {
  Task* task = nullptr;
  hw::VirtAddr base = 0;
  std::shared_ptr<VmObject> backing;
  std::shared_ptr<VmObject> shadow;
};

PrivateFaultState& State() {
  static PrivateFaultState state;
  return state;
}

void PrivatePageFaultWorkload(Kernel& kernel) {
  PrivateFaultState& s = State();
  s = PrivateFaultState{};
  s.backing = std::make_shared<VmObject>(hw::kPageSize);
  s.shadow = std::make_shared<VmObject>(hw::kPageSize);
  s.shadow->SetShadow(s.backing);
  s.task = kernel.CreateTask("mmap-race");
  auto addr = kernel.VmMapObject(*s.task, s.shadow, 0, hw::kPageSize, Prot::kReadWrite,
                                 /*anywhere=*/true, 0, Inherit::kCopy);
  ASSERT_TRUE(addr.ok());
  s.base = *addr;

  struct Worker {
    const char* name;
    uint64_t offset;
    uint8_t value;
  };
  const Worker workers[2] = {{"fault-a", kOffsetA, kStoreA}, {"fault-b", kOffsetB, kStoreB}};
  for (const Worker& w : workers) {
    kernel.CreateThread(s.task, w.name, [w](Env& env) {
      Kernel& k = env.kernel();
      PrivateFaultState& st = State();
      env.Yield();  // open an interleaving point before the faulting store
      uint8_t value = w.value;
      EXPECT_EQ(k.CopyOut(*st.task, st.base + w.offset, &value, 1), base::Status::kOk);
      env.Yield();  // and one between the store and the read-back
      uint8_t readback = 0;
      EXPECT_EQ(k.CopyIn(*st.task, st.base + w.offset, &readback, 1), base::Status::kOk);
      // A thread's own store must survive the other thread's concurrent
      // copy-on-write break of the same page.
      EXPECT_EQ(readback, w.value) << "store at offset " << w.offset << " was lost";
    });
  }
}

bool VerifyNoLostUpdate(Kernel& kernel, std::string* message) {
  PrivateFaultState& s = State();
  uint8_t a = 0;
  uint8_t b = 0;
  if (kernel.CopyIn(*s.task, s.base + kOffsetA, &a, 1) != base::Status::kOk ||
      kernel.CopyIn(*s.task, s.base + kOffsetB, &b, 1) != base::Status::kOk) {
    *message = "final mapped read failed";
    return false;
  }
  if (a != kStoreA || b != kStoreB) {
    *message = "lost update: page holds [" + std::to_string(a) + "," + std::to_string(b) +
               "], want [" + std::to_string(kStoreA) + "," + std::to_string(kStoreB) + "]";
    return false;
  }
  // Private dirt must stay in the shadow: the backing (file-side) object
  // never sees either store.
  if (s.backing->resident_pages() != 0) {
    *message = "private store leaked into the backing object";
    return false;
  }
  return true;
}

TEST(ExploreMmapTest, ConcurrentPrivatePageFaultsLoseNoUpdate) {
  Options options;
  options.name = "mmap_private_fault";
  options.preemption_bound = EnvPreemptionBound(2);
  Result result = RunExploration(options, PrivatePageFaultWorkload, VerifyNoLostUpdate);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f.kind << ": " << f.message;
  }
  for (const auto& r : result.races) {
    ADD_FAILURE() << "race: " << r.Describe();
  }
  EXPECT_TRUE(result.lock_order_cycles.empty());
  // Both workers yield around the faulting store, so the explorer must see
  // more than the single round-robin schedule.
  EXPECT_GT(result.schedules, 1u);
}

}  // namespace
}  // namespace mk
