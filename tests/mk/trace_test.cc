// Tracer contract tests: ring semantics, deterministic exports, and — the
// load-bearing property for every measurement in this repo — that tracing
// observes the simulation without charging a single simulated cycle.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mk/trace/exporters.h"

namespace mk {
namespace {

// Runs `ops` null RPCs (client sends 32 bytes, server replies empty) on a
// fresh kernel. Mirrors the bench_table2 workload so test and bench exercise
// the same span placement.
struct RpcRun {
  hw::CpuCounters final_counters;       // whole-run counters at halt
  hw::CpuCounters window;               // counter delta over the measured loop
  trace::Tracer::SpanStats rpc_spans;   // span delta over the measured loop
  std::string chrome_trace;
  std::string metrics_json;
};

RpcRun RunNullRpcs(bool traced, int ops, size_t trace_capacity = 64 * 1024) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  KernelConfig config;
  config.trace_capacity = trace_capacity;
  Kernel kernel(&machine, config);
  if (traced) {
    kernel.tracer().Enable();
  }
  Task* server_task = kernel.CreateTask("server");
  Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  kernel.CreateThread(server_task, "null-server", [&, recv = *recv](Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    while (req.ok()) {
      req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, recv, buf, sizeof(buf));
    }
  });
  RpcRun out;
  kernel.CreateThread(client_task, "client", [&, send = *send](Env& env) {
    char payload[32] = {};
    char reply[32];
    for (int i = 0; i < 20; ++i) {  // warmup
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    const trace::Tracer::SpanStats s0 = kernel.tracer().stats(trace::SpanKind::kRpc);
    const hw::CpuCounters c0 = kernel.Counters();
    for (int i = 0; i < ops; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    out.window = kernel.Counters() - c0;
    const trace::Tracer::SpanStats s1 = kernel.tracer().stats(trace::SpanKind::kRpc);
    out.rpc_spans.count = s1.count - s0.count;
    out.rpc_spans.total = s1.total - s0.total;
    for (int p = 0; p < trace::kMaxSpanPhases; ++p) {
      out.rpc_spans.phases[p] = s1.phases[p] - s0.phases[p];
    }
    kernel.PortDestroy(*server_task, *recv);
  });
  kernel.Run();
  out.final_counters = kernel.Counters();
  std::ostringstream trace_out, metrics_out;
  trace::WriteChromeTrace(trace_out, kernel);
  trace::WriteMetricsJson(metrics_out, kernel);
  out.chrome_trace = trace_out.str();
  out.metrics_json = metrics_out.str();
  return out;
}

void ExpectSameCounters(const hw::CpuCounters& a, const hw::CpuCounters& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.bus_cycles, b.bus_cycles);
  EXPECT_EQ(a.icache_misses, b.icache_misses);
  EXPECT_EQ(a.dcache_misses, b.dcache_misses);
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
}

TEST(TraceRing, OverflowKeepsNewest) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  KernelConfig config;
  config.trace_capacity = 8;
  Kernel kernel(&machine, config);
  trace::Tracer& tracer = kernel.tracer();
  tracer.Enable();
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.Emit(trace::EventType::kInterrupt, i);
  }
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.total_emitted(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Oldest-first, and only the newest 8 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].type, trace::EventType::kInterrupt);
    EXPECT_EQ(events[i].a, 12 + i);
  }
}

TEST(TraceRing, DisabledTracerEmitsNothing) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  trace::Tracer& tracer = kernel.tracer();
  tracer.Emit(trace::EventType::kInterrupt, 1);
  EXPECT_EQ(tracer.Events().size(), 0u);
  EXPECT_EQ(tracer.total_emitted(), 0u);
  EXPECT_EQ(tracer.BeginSpan(trace::SpanKind::kTrap, trace::EventType::kTrapCall), 0u);
}

TEST(TraceDeterminism, IdenticalRunsProduceByteIdenticalExports) {
  const RpcRun a = RunNullRpcs(/*traced=*/true, /*ops=*/50);
  const RpcRun b = RunNullRpcs(/*traced=*/true, /*ops=*/50);
  EXPECT_FALSE(a.chrome_trace.empty());
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(TraceZeroCost, TracedRunMatchesUntracedExactly) {
  const RpcRun untraced = RunNullRpcs(/*traced=*/false, /*ops=*/50);
  const RpcRun traced = RunNullRpcs(/*traced=*/true, /*ops=*/50);
  ExpectSameCounters(traced.final_counters, untraced.final_counters);
  ExpectSameCounters(traced.window, untraced.window);
}

TEST(TraceSpans, SpanTotalsEqualCounterWindowExactly) {
  const RpcRun run = RunNullRpcs(/*traced=*/true, /*ops=*/50);
  EXPECT_EQ(run.rpc_spans.count, 50u);
  // The single global cycle clock means a client-side RPC span brackets
  // every cycle charged on the call's behalf: span totals must reproduce the
  // counter window with zero residue.
  ExpectSameCounters(run.rpc_spans.total, run.window);
  // Phases partition the span: client_entry + server + reply_return == total.
  hw::CpuCounters phase_sum = run.rpc_spans.phases[0];
  phase_sum += run.rpc_spans.phases[1];
  phase_sum += run.rpc_spans.phases[2];
  ExpectSameCounters(phase_sum, run.rpc_spans.total);
  // Every phase did real work.
  for (int p = 0; p < trace::kMaxSpanPhases; ++p) {
    EXPECT_GT(run.rpc_spans.phases[p].cycles, 0u) << "phase " << p;
  }
}

TEST(TraceExports, ChromeTraceShowsRpcPhases) {
  const RpcRun run = RunNullRpcs(/*traced=*/true, /*ops=*/5);
  EXPECT_NE(run.chrome_trace.find("\"name\":\"rpc\""), std::string::npos);
  EXPECT_NE(run.chrome_trace.find("client_entry"), std::string::npos);
  EXPECT_NE(run.chrome_trace.find("\"name\":\"server\""), std::string::npos);
  EXPECT_NE(run.chrome_trace.find("reply_return"), std::string::npos);
  EXPECT_NE(run.chrome_trace.find("process_name"), std::string::npos);
}

TEST(TraceMetrics, CountersHistogramsAndProfile) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  Task* task = kernel.CreateTask("app");
  kernel.CreateThread(task, "main", [&](Env& env) {
    for (int i = 0; i < 10; ++i) {
      (void)env.ThreadSelf();
    }
  });
  kernel.Run();
  trace::Tracer& tracer = kernel.tracer();
  const trace::Tracer::SpanStats traps = tracer.stats(trace::SpanKind::kTrap);
  EXPECT_EQ(traps.count, 10u);
  const trace::Histogram& hist = tracer.metrics().Hist("trap.cycles");
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_GT(hist.mean(), 0.0);
  EXPECT_GE(hist.PercentileBound(0.99), hist.min());
  // The flat profile resolves region names and counted the trap stub.
  bool saw_stub = false;
  for (const trace::Tracer::RegionProfile& region : tracer.FlatProfile()) {
    if (region.name == "ustub.thread_self") {
      saw_stub = true;
      EXPECT_GE(region.calls, 10u);
      EXPECT_GT(region.cycles, 0u);
    }
  }
  EXPECT_TRUE(saw_stub);
}

TEST(TraceMetrics, RingCapacityAccessor) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  KernelConfig config;
  config.trace_capacity = 123;
  Kernel kernel(&machine, config);
  EXPECT_EQ(kernel.tracer().capacity(), 123u);
}

}  // namespace
}  // namespace mk
