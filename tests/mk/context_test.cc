#include "src/mk/context.h"

#include <gtest/gtest.h>

#include <vector>

namespace mk {
namespace {

// Plain ping-pong between main and one fiber.
void* g_main_sp = nullptr;
void* g_fiber_sp = nullptr;
std::vector<int>* g_trace = nullptr;

void FiberEntry() {
  g_trace->push_back(1);
  WposCtxSwitch(&g_fiber_sp, g_main_sp);
  g_trace->push_back(3);
  WposCtxSwitch(&g_fiber_sp, g_main_sp);
  // Never reached: the test never resumes the fiber a third time.
  g_trace->push_back(99);
}

TEST(ContextTest, SwitchRoundTripsPreserveOrder) {
  std::vector<int> trace;
  g_trace = &trace;
  std::vector<uint8_t> stack(64 * 1024);
  g_fiber_sp = WposCtxMake(stack.data() + stack.size(), &FiberEntry);
  trace.push_back(0);
  WposCtxSwitch(&g_main_sp, g_fiber_sp);
  trace.push_back(2);
  WposCtxSwitch(&g_main_sp, g_fiber_sp);
  trace.push_back(4);
  EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Callee-saved register integrity across many switches: the loop counters
// below live across WposCtxSwitch calls, so the compiler keeps them in
// callee-saved registers or spills them; either way their values must
// survive arbitrary switch sequences.
void* g_sp_a = nullptr;
void* g_sp_b = nullptr;
uint64_t g_sum_fiber = 0;

void CountingFiber() {
  uint64_t local = 0;
  for (int i = 0; i < 1000; ++i) {
    local += static_cast<uint64_t>(i);
    WposCtxSwitch(&g_sp_a, g_sp_b);
  }
  g_sum_fiber = local;
  WposCtxSwitch(&g_sp_a, g_sp_b);
}

TEST(ContextTest, CalleeSavedStateSurvivesManySwitches) {
  std::vector<uint8_t> stack(64 * 1024);
  g_sp_a = WposCtxMake(stack.data() + stack.size(), &CountingFiber);
  uint64_t main_sum = 0;
  for (int i = 0; i < 1000; ++i) {
    WposCtxSwitch(&g_sp_b, g_sp_a);  // run one fiber step
    main_sum += static_cast<uint64_t>(i) * 3;
  }
  WposCtxSwitch(&g_sp_b, g_sp_a);  // let the fiber finish
  EXPECT_EQ(g_sum_fiber, 1000ull * 999 / 2);
  EXPECT_EQ(main_sum, 3ull * 1000 * 999 / 2);
}

TEST(ContextTest, MakeAlignsEntryStack) {
  // Entry with an odd stack top still produces an aligned start (no crash in
  // SSE spills inside the entry function).
  std::vector<uint8_t> stack(64 * 1024);
  for (int offset = 0; offset < 16; ++offset) {
    void* sp = WposCtxMake(stack.data() + stack.size() - offset, &FiberEntry);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(sp) % 16, 0u) << offset;
  }
}

}  // namespace
}  // namespace mk
