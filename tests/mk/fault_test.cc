// Fault injector contract tests. The two load-bearing properties:
//   1. Determinism — the same seed replays the same campaign byte for byte:
//      same fire schedule, same trace events, same cycle counters, same
//      client-visible statuses.
//   2. Zero cost when idle — with the injector disabled (or enabled but
//      never firing) the simulation's counters are byte-identical to a build
//      that never heard of fault injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mk/rpc_robust.h"
#include "src/mk/server_loop.h"

namespace mk {
namespace {

constexpr uint32_t kEchoOp = 1;
constexpr uint64_t kDeadlineNs = 5'000'000;  // 5 simulated ms per call

struct EchoRun {
  std::vector<fault::FiredFault> log;
  std::vector<trace::TraceEvent> events;
  hw::CpuCounters counters{};
  std::vector<base::Status> statuses;
  uint32_t invariant_violations = 0;
};

// Runs `ops` echo RPCs against a ServerLoop server, with `configure` applied
// to the fresh kernel before any thread runs (arm the injector there).
EchoRun RunEchoWorkload(int ops, const std::function<void(Kernel&)>& configure) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  if (configure) {
    configure(kernel);
  }
  Task* server_task = kernel.CreateTask("server");
  Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  auto loop = std::make_shared<ServerLoop>(*recv, "echo", 64);
  loop->Register(kEchoOp, [](Env& env, const RpcRequest& request, const uint8_t* req,
                             const uint8_t*, uint32_t) {
    env.RpcReply(request.token, req, request.req_len);
  });
  kernel.CreateThread(server_task, "echo", [loop](Env& env) { loop->Run(env); });
  EchoRun out;
  kernel.CreateThread(client_task, "client", [&, send = *send, loop](Env& env) {
    for (int i = 0; i < ops; ++i) {
      uint32_t req[2] = {kEchoOp, static_cast<uint32_t>(i)};
      uint32_t reply[2] = {};
      out.statuses.push_back(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply), nullptr,
                                         nullptr, nullptr, 0, nullptr, kDeadlineNs));
    }
    loop->Stop();
  });
  kernel.Run();
  out.log = kernel.faults().log();
  out.events = kernel.tracer().Events();
  out.counters = kernel.Counters();
  out.invariant_violations = kernel.CheckInvariants();
  return out;
}

void ExpectIdenticalCounters(const hw::CpuCounters& a, const hw::CpuCounters& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.bus_cycles, b.bus_cycles);
  EXPECT_EQ(a.icache_misses, b.icache_misses);
  EXPECT_EQ(a.dcache_misses, b.dcache_misses);
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
  EXPECT_EQ(a.data_accesses, b.data_accesses);
  EXPECT_EQ(a.uncached_accesses, b.uncached_accesses);
}

void ExpectIdenticalEvents(const std::vector<trace::TraceEvent>& a,
                           const std::vector<trace::TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "event " << i;
    EXPECT_EQ(a[i].cycle, b[i].cycle) << "event " << i;
    EXPECT_EQ(a[i].thread, b[i].thread) << "event " << i;
    EXPECT_EQ(a[i].task, b[i].task) << "event " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "event " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "event " << i;
  }
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalCampaign) {
  const auto configure = [](Kernel& kernel) {
    kernel.faults().Enable(7);
    kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kTransientError,
                        30);
  };
  const EchoRun a = RunEchoWorkload(40, configure);
  const EchoRun b = RunEchoWorkload(40, configure);
  EXPECT_EQ(a.invariant_violations, 0u);
  EXPECT_GT(a.log.size(), 0u) << "a 30% arming over 40 ops should fire";
  ASSERT_EQ(a.log.size(), b.log.size());
  for (size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i].point, b.log[i].point);
    EXPECT_EQ(a.log[i].mode, b.log[i].mode);
    EXPECT_EQ(a.log[i].seq, b.log[i].seq);
  }
  EXPECT_EQ(a.statuses, b.statuses);
  ExpectIdenticalCounters(a.counters, b.counters);
  ExpectIdenticalEvents(a.events, b.events);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  const EchoRun a = RunEchoWorkload(40, [](Kernel& kernel) {
    kernel.faults().Enable(7);
    kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kTransientError,
                        50);
  });
  const EchoRun b = RunEchoWorkload(40, [](Kernel& kernel) {
    kernel.faults().Enable(8);
    kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kTransientError,
                        50);
  });
  // 40 independent 50% draws from two different streams: the probability of
  // an identical outcome pattern is 2^-40.
  EXPECT_NE(a.statuses, b.statuses);
}

TEST(FaultInjectorTest, IdleInjectorPerturbsNothing) {
  // Run A never touches the injector. Run B enables it and arms a point at
  // 0% — the full decision machinery runs (including RNG draws) but nothing
  // fires. Counters and trace must be byte-identical: the injector is
  // host-side only and charges zero simulated cycles.
  const EchoRun a = RunEchoWorkload(40, nullptr);
  const EchoRun b = RunEchoWorkload(40, [](Kernel& kernel) {
    kernel.faults().Enable(5);
    kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kTransientError,
                        0);
    kernel.faults().Arm(fault::FaultPoint::kRpcReply, fault::FaultMode::kDropReply, 0);
    kernel.faults().Arm(fault::FaultPoint::kMessageCopy, fault::FaultMode::kTransientError, 0);
  });
  EXPECT_TRUE(b.log.empty());
  for (const base::Status st : b.statuses) {
    EXPECT_EQ(st, base::Status::kOk);
  }
  ExpectIdenticalCounters(a.counters, b.counters);
  ExpectIdenticalEvents(a.events, b.events);
}

TEST(FaultInjectorTest, TransientErrorSurfacesAsBusy) {
  const EchoRun run = RunEchoWorkload(5, [](Kernel& kernel) {
    kernel.faults().Enable(3);
    kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kTransientError,
                        100, /*max_fires=*/2);
  });
  ASSERT_EQ(run.statuses.size(), 5u);
  EXPECT_EQ(run.statuses[0], base::Status::kBusy);
  EXPECT_EQ(run.statuses[1], base::Status::kBusy);
  EXPECT_EQ(run.statuses[2], base::Status::kOk);
  EXPECT_EQ(run.statuses[3], base::Status::kOk);
  EXPECT_EQ(run.statuses[4], base::Status::kOk);
  EXPECT_EQ(run.log.size(), 2u);
  EXPECT_EQ(run.invariant_violations, 0u);
}

TEST(FaultInjectorTest, MessageCopyFaultFailsBeforeDelivery) {
  const EchoRun run = RunEchoWorkload(3, [](Kernel& kernel) {
    kernel.faults().Enable(3);
    kernel.faults().Arm(fault::FaultPoint::kMessageCopy, fault::FaultMode::kTransientError, 100,
                        /*max_fires=*/1);
  });
  ASSERT_EQ(run.statuses.size(), 3u);
  EXPECT_EQ(run.statuses[0], base::Status::kBusy);
  EXPECT_EQ(run.statuses[1], base::Status::kOk);
  EXPECT_EQ(run.statuses[2], base::Status::kOk);
  EXPECT_EQ(run.invariant_violations, 0u);
}

TEST(FaultInjectorTest, DroppedReplyTimesOutThenRecovers) {
  const EchoRun run = RunEchoWorkload(3, [](Kernel& kernel) {
    kernel.faults().Enable(3);
    kernel.faults().Arm(fault::FaultPoint::kRpcReply, fault::FaultMode::kDropReply, 100,
                        /*max_fires=*/1);
  });
  ASSERT_EQ(run.statuses.size(), 3u);
  EXPECT_EQ(run.statuses[0], base::Status::kTimedOut);
  EXPECT_EQ(run.statuses[1], base::Status::kOk);
  EXPECT_EQ(run.statuses[2], base::Status::kOk);
  EXPECT_EQ(run.invariant_violations, 0u);
}

TEST(FaultInjectorTest, CrashAtHandlerEntryFailsEveryCaller) {
  const EchoRun run = RunEchoWorkload(3, [](Kernel& kernel) {
    kernel.faults().Enable(3);
    kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kCrashTask, 100,
                        /*max_fires=*/1);
  });
  ASSERT_EQ(run.statuses.size(), 3u);
  // The in-flight caller fails when the task dies; later callers hit the
  // dead port directly.
  EXPECT_EQ(run.statuses[0], base::Status::kPortDead);
  EXPECT_EQ(run.statuses[1], base::Status::kPortDead);
  EXPECT_EQ(run.statuses[2], base::Status::kPortDead);
  EXPECT_EQ(run.invariant_violations, 0u);
}

// kDelayReply slows the handler without breaking it: every call still
// completes kOk, but the delayed ones take at least the injector's minimum
// simulated delay longer than an undelayed echo.
TEST(FaultInjectorTest, DelayReplySlowsButCompletes) {
  const EchoRun clean = RunEchoWorkload(4, nullptr);
  const EchoRun delayed = RunEchoWorkload(4, [](Kernel& kernel) {
    kernel.faults().Enable(3);
    kernel.faults().ArmDelay(fault::FaultPoint::kServerHandlerEntry, 500'000, 2'000'000, 100);
  });
  for (const base::Status st : delayed.statuses) {
    EXPECT_EQ(st, base::Status::kOk) << "a delayed server still answers";
  }
  EXPECT_EQ(delayed.log.size(), 4u);
  EXPECT_EQ(delayed.invariant_violations, 0u);
  // Wall time: every op gained at least the minimum injected delay.
  EXPECT_GT(delayed.counters.cycles, clean.counters.cycles);
}

// ArmDelay draws are part of the seeded stream: same seed, same delays.
TEST(FaultInjectorTest, DelayDrawsReplayWithSeed) {
  const auto configure = [](Kernel& kernel) {
    kernel.faults().Enable(11);
    kernel.faults().ArmDelay(fault::FaultPoint::kServerHandlerEntry, 100'000, 5'000'000, 60);
  };
  const EchoRun a = RunEchoWorkload(20, configure);
  const EchoRun b = RunEchoWorkload(20, configure);
  ASSERT_EQ(a.log.size(), b.log.size());
  ExpectIdenticalCounters(a.counters, b.counters);
  ExpectIdenticalEvents(a.events, b.events);
}

// kStallTask wedges the serving thread without killing the task: the caller
// (and every queued caller) blocks until something terminates the task. With
// a per-call deadline the client sees kTimedOut — alive-but-wedged looks
// exactly like a dropped reply from the outside, which is the point.
TEST(FaultInjectorTest, StallTaskWedgesUntilTerminated) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.faults().Enable(3);
  kernel.faults().Arm(fault::FaultPoint::kServerHandlerEntry, fault::FaultMode::kStallTask, 100,
                      /*max_fires=*/1);
  Task* server_task = kernel.CreateTask("server");
  Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  auto loop = std::make_shared<ServerLoop>(*recv, "echo", 64);
  loop->Register(kEchoOp, [](Env& env, const RpcRequest& request, const uint8_t* req,
                             const uint8_t*, uint32_t) {
    env.RpcReply(request.token, req, request.req_len);
  });
  kernel.CreateThread(server_task, "echo", [loop](Env& env) { loop->Run(env); });
  std::vector<base::Status> statuses;
  kernel.CreateThread(client_task, "client", [&, send = *send](Env& env) {
    uint32_t req[2] = {kEchoOp, 0};
    uint32_t reply[2] = {};
    // First call wedges the server; the deadline, not a reply, ends it.
    statuses.push_back(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply), nullptr, nullptr,
                                   nullptr, 0, nullptr, kDeadlineNs));
    // The server is wedged, not dead: a second bounded call times out too.
    statuses.push_back(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply), nullptr, nullptr,
                                   nullptr, 0, nullptr, kDeadlineNs));
    // Watchdog stand-in: terminate the wedged task; now the port is dead.
    env.kernel().TerminateTask(server_task);
    statuses.push_back(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply), nullptr, nullptr,
                                   nullptr, 0, nullptr, kDeadlineNs));
  });
  EXPECT_EQ(kernel.Run(), 0u);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], base::Status::kTimedOut);
  EXPECT_EQ(statuses[1], base::Status::kTimedOut);
  EXPECT_EQ(statuses[2], base::Status::kPortDead);
  EXPECT_EQ(kernel.CheckInvariants(), 0u);
}

// RpcCallRobust turns a dropped reply into a transparent retry: the first
// attempt times out, the resolver re-supplies the port, the retry succeeds.
TEST(FaultInjectorTest, RobustCallRidesThroughDroppedReply) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.faults().Enable(3);
  kernel.faults().Arm(fault::FaultPoint::kRpcReply, fault::FaultMode::kDropReply, 100,
                      /*max_fires=*/1);
  Task* server_task = kernel.CreateTask("server");
  Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  auto loop = std::make_shared<ServerLoop>(*recv, "echo", 64);
  loop->Register(kEchoOp, [](Env& env, const RpcRequest& request, const uint8_t* req,
                             const uint8_t*, uint32_t) {
    env.RpcReply(request.token, req, request.req_len);
  });
  kernel.CreateThread(server_task, "echo", [loop](Env& env) { loop->Run(env); });
  kernel.CreateThread(client_task, "client", [&, send = *send, loop](Env& env) {
    PortName cached = send;
    const PortResolver resolver = [send](Env&) -> base::Result<PortName> { return send; };
    RobustCallOptions opts;
    opts.attempt_timeout_ns = kDeadlineNs;
    uint32_t req[2] = {kEchoOp, 99};
    uint32_t reply[2] = {};
    EXPECT_EQ(RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply), opts),
              base::Status::kOk);
    EXPECT_EQ(reply[1], 99u);
    loop->Stop();
  });
  EXPECT_EQ(kernel.Run(), 0u);
  EXPECT_EQ(kernel.faults().total_fires(), 1u);
  EXPECT_EQ(kernel.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace mk
