// Shared fixture: one machine + kernel per test.
#ifndef TESTS_MK_KERNEL_TEST_FIXTURE_H_
#define TESTS_MK_KERNEL_TEST_FIXTURE_H_

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"

namespace mk {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest()
      : machine_(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024}), kernel_(&machine_) {}

  hw::Machine machine_;
  Kernel kernel_;
};

}  // namespace mk

#endif  // TESTS_MK_KERNEL_TEST_FIXTURE_H_
