// Shared fixture: one machine + kernel per test. Teardown runs the kernel
// state analyzer: every test ends with a consistent object graph, and any
// thread left in a wait-for cycle fails the test with the rendered cycle.
#ifndef TESTS_MK_KERNEL_TEST_FIXTURE_H_
#define TESTS_MK_KERNEL_TEST_FIXTURE_H_

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/mk/analysis/wait_for_graph.h"
#include "src/mk/kernel.h"

namespace mk {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest()
      : machine_(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024}), kernel_(&machine_) {}

  void TearDown() override {
    EXPECT_EQ(kernel_.CheckInvariants(), 0u)
        << "kernel object graph inconsistent at test end (details logged above)";
    if (check_deadlocks_on_teardown_) {
      analysis::WaitForGraph graph = analysis::WaitForGraph::Build(kernel_);
      for (const std::string& cycle : graph.FindCycleReports()) {
        ADD_FAILURE() << "deadlock cycle left behind: " << cycle;
      }
    }
  }

  hw::Machine machine_;
  Kernel kernel_;
  // Tests that deliberately construct a deadlock opt out of the teardown scan.
  bool check_deadlocks_on_teardown_ = true;
};

}  // namespace mk

#endif  // TESTS_MK_KERNEL_TEST_FIXTURE_H_
