#include <cstring>

#include "tests/mk/kernel_test_fixture.h"
#include "src/mk/pager_protocol.h"
#include "src/mk/vm_object.h"

namespace mk {
namespace {

TEST_F(KernelTest, AllocateTouchFaultsLazily) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, 8 * hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(task->faults_taken, 0u);
  // Lazy allocation: no frames consumed until touch.
  const uint64_t frames_before = machine_.mem().frames_allocated();
  kernel_.CreateThread(task, "w", [&](Env& env) {
    ASSERT_EQ(env.Touch(*addr, 3 * hw::kPageSize, /*write=*/true), base::Status::kOk);
  });
  kernel_.Run();
  EXPECT_EQ(task->faults_taken, 3u);
  EXPECT_EQ(task->zero_fills, 3u);
  EXPECT_EQ(machine_.mem().frames_allocated() - frames_before, 3u);
}

TEST_F(KernelTest, CopyOutCopyInRoundTrip) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, hw::kPageSize * 2);
  ASSERT_TRUE(addr.ok());
  kernel_.CreateThread(task, "w", [&](Env& env) {
    const char msg[] = "spanning page boundaries is fine";
    // Place the write so it crosses the page boundary.
    const hw::VirtAddr dst = *addr + hw::kPageSize - 10;
    ASSERT_EQ(env.CopyOut(dst, msg, sizeof(msg)), base::Status::kOk);
    char out[sizeof(msg)] = {};
    ASSERT_EQ(env.CopyIn(dst, out, sizeof(msg)), base::Status::kOk);
    EXPECT_STREQ(out, msg);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(KernelTest, UnmappedAccessFails) {
  Task* task = kernel_.CreateTask("t");
  kernel_.CreateThread(task, "w", [&](Env& env) {
    char b;
    EXPECT_EQ(env.CopyIn(0x6666'0000, &b, 1), base::Status::kInvalidAddress);
  });
  kernel_.Run();
}

TEST_F(KernelTest, ProtectionFailureOnWriteToReadOnly) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  kernel_.CreateThread(task, "w", [&](Env& env) {
    ASSERT_EQ(env.Touch(*addr, 8, true), base::Status::kOk);
    ASSERT_EQ(env.kernel().VmProtect(env.task(), *addr, hw::kPageSize, Prot::kRead),
              base::Status::kOk);
    char b = 1;
    EXPECT_EQ(env.CopyOut(*addr, &b, 1), base::Status::kProtectionFailure);
    EXPECT_EQ(env.CopyIn(*addr, &b, 1), base::Status::kOk);  // reads still fine
  });
  kernel_.Run();
}

TEST_F(KernelTest, DeallocateRemovesMapping) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  kernel_.CreateThread(task, "w", [&](Env& env) {
    ASSERT_EQ(env.Touch(*addr, 8, true), base::Status::kOk);
    ASSERT_EQ(env.kernel().VmDeallocate(env.task(), *addr, hw::kPageSize), base::Status::kOk);
    char b;
    EXPECT_EQ(env.CopyIn(*addr, &b, 1), base::Status::kInvalidAddress);
  });
  kernel_.Run();
}

TEST_F(KernelTest, SharedObjectMappingIsCoherent) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto object = std::make_shared<VmObject>(hw::kPageSize);
  auto va = kernel_.VmMapObject(*a, object, 0, hw::kPageSize, Prot::kReadWrite, true);
  auto vb = kernel_.VmMapObject(*b, object, 0, hw::kPageSize, Prot::kReadWrite, true);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  uint32_t seen = 0;
  kernel_.CreateThread(a, "writer", [&](Env& env) {
    uint32_t v = 0xc0ffee;
    ASSERT_EQ(env.CopyOut(*va, &v, 4), base::Status::kOk);
  });
  kernel_.CreateThread(b, "reader", [&](Env& env) {
    env.Yield();  // writer first
    ASSERT_EQ(env.CopyIn(*vb, &seen, 4), base::Status::kOk);
  });
  kernel_.Run();
  EXPECT_EQ(seen, 0xc0ffeeu);
}

TEST_F(KernelTest, CoercedMemorySameAddressEverywhere) {
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto addr = kernel_.VmAllocateCoerced(*a, hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  EXPECT_GE(*addr, VmMap::kCoercedMin);
  ASSERT_EQ(kernel_.VmMapCoerced(*b, *addr), base::Status::kOk);
  // Same numeric address is valid in both address spaces and aliases the
  // same memory — the OS/2 shared-memory assumption.
  uint32_t seen = 0;
  kernel_.CreateThread(a, "writer", [&](Env& env) {
    uint32_t v = 1234;
    ASSERT_EQ(env.CopyOut(*addr, &v, 4), base::Status::kOk);
  });
  kernel_.CreateThread(b, "reader", [&](Env& env) {
    env.Yield();
    ASSERT_EQ(env.CopyIn(*addr, &seen, 4), base::Status::kOk);
  });
  kernel_.Run();
  EXPECT_EQ(seen, 1234u);
}

TEST_F(KernelTest, CoercedRangeNeverCollidesWithAnywhereAllocations) {
  Task* a = kernel_.CreateTask("a");
  auto coerced = kernel_.VmAllocateCoerced(*a, hw::kPageSize);
  ASSERT_TRUE(coerced.ok());
  for (int i = 0; i < 50; ++i) {
    auto v = kernel_.VmAllocate(*a, hw::kPageSize * 16);
    ASSERT_TRUE(v.ok());
    EXPECT_LT(*v, VmMap::kCoercedMin);
  }
}

TEST_F(KernelTest, ForkCopyOnWriteIsolatesParentAndChild) {
  Task* parent = kernel_.CreateTask("parent");
  auto addr = kernel_.VmAllocate(*parent, hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  uint32_t child_initial = 0;
  uint32_t child_after_parent_write = 0;
  uint32_t parent_after_child_write = 0;
  kernel_.CreateThread(parent, "driver", [&](Env& env) {
    uint32_t v = 111;
    ASSERT_EQ(env.CopyOut(*addr, &v, 4), base::Status::kOk);
    Task* child = env.kernel().TaskForkVm(env.task(), "child");
    // Child sees the pre-fork value.
    ASSERT_EQ(env.kernel().CopyIn(*child, *addr, &child_initial, 4), base::Status::kOk);
    // Parent writes; child must NOT see it.
    v = 222;
    ASSERT_EQ(env.CopyOut(*addr, &v, 4), base::Status::kOk);
    ASSERT_EQ(env.kernel().CopyIn(*child, *addr, &child_after_parent_write, 4),
              base::Status::kOk);
    // Child writes; parent must not see that either.
    uint32_t w = 333;
    ASSERT_EQ(env.kernel().CopyOut(*child, *addr, &w, 4), base::Status::kOk);
    ASSERT_EQ(env.CopyIn(*addr, &parent_after_child_write, 4), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(child_initial, 111u);
  EXPECT_EQ(child_after_parent_write, 111u);
  EXPECT_EQ(parent_after_child_write, 222u);
  EXPECT_GE(parent->cow_copies + kernel_.tasks().back()->cow_copies, 1u);
}

TEST_F(KernelTest, ExternalPagerSuppliesPages) {
  Task* pager_task = kernel_.CreateTask("pager");
  Task* user_task = kernel_.CreateTask("user");
  auto pager_port_name = kernel_.PortAllocate(*pager_task);
  ASSERT_TRUE(pager_port_name.ok());
  Port* pager_port = *kernel_.ResolvePort(*pager_task, *pager_port_name);

  auto object = std::make_shared<VmObject>(4 * hw::kPageSize);
  kernel_.RegisterPagedObject(object, pager_port, 0);
  auto addr = kernel_.VmMapObject(*user_task, object, 0, 4 * hw::kPageSize, Prot::kReadWrite,
                                  /*anywhere=*/true);
  ASSERT_TRUE(addr.ok());

  // Pager thread: serves exactly two page-in requests, filling each page
  // with a byte derived from its index.
  kernel_.CreateThread(pager_task, "pager", [&, port = *pager_port_name](Env& env) {
    for (int i = 0; i < 2; ++i) {
      PagerRequest req;
      auto r = env.RpcReceive(port, &req, sizeof(req));
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(req.op, PagerOp::kDataRequest);
      std::vector<uint8_t> page(hw::kPageSize,
                                static_cast<uint8_t>(0xa0 + req.page_index));
      PagerReply reply{};
      env.RpcReply(r->token, &reply, sizeof(reply), page.data(),
                   static_cast<uint32_t>(page.size()));
    }
  });
  uint8_t page0 = 0;
  uint8_t page2 = 0;
  kernel_.CreateThread(user_task, "user", [&](Env& env) {
    ASSERT_EQ(env.CopyIn(*addr, &page0, 1), base::Status::kOk);
    ASSERT_EQ(env.CopyIn(*addr + 2 * hw::kPageSize, &page2, 1), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(page0, 0xa0);
  EXPECT_EQ(page2, 0xa2);
  EXPECT_EQ(user_task->pageins, 2u);
}

TEST_F(KernelTest, VmMapEntrySplitOnPartialProtect) {
  Task* task = kernel_.CreateTask("t");
  auto addr = kernel_.VmAllocate(*task, 4 * hw::kPageSize);
  ASSERT_TRUE(addr.ok());
  const size_t entries_before = task->vm_map().entry_count();
  ASSERT_EQ(kernel_.VmProtect(*task, *addr + hw::kPageSize, hw::kPageSize, Prot::kRead),
            base::Status::kOk);
  EXPECT_EQ(task->vm_map().entry_count(), entries_before + 2);
  EXPECT_EQ(task->vm_map().Lookup(*addr)->prot, Prot::kReadWrite);
  EXPECT_EQ(task->vm_map().Lookup(*addr + hw::kPageSize)->prot, Prot::kRead);
  EXPECT_EQ(task->vm_map().Lookup(*addr + 2 * hw::kPageSize)->prot, Prot::kReadWrite);
}

TEST_F(KernelTest, DeviceBackedObjectMapsAperture) {
  Task* task = kernel_.CreateTask("t");
  auto frames = machine_.mem().AllocContiguous(2);
  ASSERT_TRUE(frames.ok());
  auto object = std::make_shared<VmObject>(2 * hw::kPageSize);
  object->SetDeviceWindow(*frames);
  auto addr = kernel_.VmMapObject(*task, object, 0, 2 * hw::kPageSize, Prot::kReadWrite, true);
  ASSERT_TRUE(addr.ok());
  kernel_.CreateThread(task, "w", [&](Env& env) {
    uint32_t v = 0xfb0;
    ASSERT_EQ(env.CopyOut(*addr + hw::kPageSize, &v, 4), base::Status::kOk);
  });
  kernel_.Run();
  // The write landed directly in the aperture frames.
  EXPECT_EQ(machine_.mem().ReadU32(*frames + hw::kPageSize), 0xfb0u);
}

}  // namespace
}  // namespace mk
