// Port sets: one receiver, many ports (the Mach mechanism that lets a server
// own a port per object — e.g. per open file — with a single service loop).
#include <cstring>
#include <map>

#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

TEST_F(KernelTest, PortSetRpcReceivesFromAnyMember) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto set = kernel_.PortSetAllocate(*server);
  ASSERT_TRUE(set.ok());
  auto p1 = kernel_.PortAllocate(*server);
  auto p2 = kernel_.PortAllocate(*server);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p1), base::Status::kOk);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p2), base::Status::kOk);
  auto s1 = kernel_.MakeSendRight(*server, *p1, *client);
  auto s2 = kernel_.MakeSendRight(*server, *p2, *client);
  const uint64_t id1 = (*kernel_.ResolvePort(*server, *p1))->id();
  const uint64_t id2 = (*kernel_.ResolvePort(*server, *p2))->id();

  std::map<uint64_t, int> served_by_port;
  kernel_.CreateThread(server, "s", [&, set = *set](Env& env) {
    char buf[64];
    for (int i = 0; i < 4; ++i) {
      auto req = env.RpcReceive(set, buf, sizeof(buf));
      ASSERT_TRUE(req.ok());
      ++served_by_port[req->arrived_port];
      uint32_t v;
      std::memcpy(&v, buf, 4);
      v += 1000;
      env.RpcReply(req->token, &v, sizeof(v));
    }
  });
  kernel_.CreateThread(client, "c", [&, s1 = *s1, s2 = *s2](Env& env) {
    for (int i = 0; i < 2; ++i) {
      uint32_t v = static_cast<uint32_t>(i);
      uint32_t r = 0;
      ASSERT_EQ(env.RpcCall(s1, &v, 4, &r, 4), base::Status::kOk);
      ASSERT_EQ(r, v + 1000);
      ASSERT_EQ(env.RpcCall(s2, &v, 4, &r, 4), base::Status::kOk);
      ASSERT_EQ(r, v + 1000);
    }
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(served_by_port[id1], 2);
  EXPECT_EQ(served_by_port[id2], 2);
}

TEST_F(KernelTest, PortSetServerParkedBeforeCalls) {
  // The server blocks on the empty set first; calls on members must wake it.
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto set = kernel_.PortSetAllocate(*server);
  auto p1 = kernel_.PortAllocate(*server);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p1), base::Status::kOk);
  auto s1 = kernel_.MakeSendRight(*server, *p1, *client);
  bool served = false;
  kernel_.CreateThread(server, "s", [&, set = *set](Env& env) {
    char buf[16];
    auto req = env.RpcReceive(set, buf, sizeof(buf));
    ASSERT_TRUE(req.ok());
    served = true;
    env.RpcReply(req->token, nullptr, 0);
  });
  kernel_.CreateThread(client, "c", [&, s1 = *s1](Env& env) {
    env.Yield();  // let the server park first
    char reply[8];
    ASSERT_EQ(env.RpcCall(s1, "x", 1, reply, sizeof(reply)), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(served);
}

TEST_F(KernelTest, PortSetMachMsgReceive) {
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto set = kernel_.PortSetAllocate(*server);
  auto p1 = kernel_.PortAllocate(*server);
  auto p2 = kernel_.PortAllocate(*server);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p1), base::Status::kOk);
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set, *p2), base::Status::kOk);
  auto s1 = kernel_.MakeSendRight(*server, *p1, *client);
  auto s2 = kernel_.MakeSendRight(*server, *p2, *client);
  std::vector<uint32_t> got;
  kernel_.CreateThread(client, "c", [&, s1 = *s1, s2 = *s2](Env& env) {
    MachMessage m1;
    m1.msg_id = 11;
    m1.dest = s1;
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(m1)), base::Status::kOk);
    MachMessage m2;
    m2.msg_id = 22;
    m2.dest = s2;
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(m2)), base::Status::kOk);
  });
  kernel_.CreateThread(server, "s", [&, set = *set](Env& env) {
    for (int i = 0; i < 2; ++i) {
      MachMessage msg;
      ASSERT_EQ(env.kernel().MachMsgReceive(set, &msg), base::Status::kOk);
      got.push_back(msg.msg_id);
    }
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 33u);
}

TEST_F(KernelTest, PortSetMembershipRules) {
  Task* server = kernel_.CreateTask("server");
  auto set1 = kernel_.PortSetAllocate(*server);
  auto set2 = kernel_.PortSetAllocate(*server);
  auto port = kernel_.PortAllocate(*server);
  // Sets do not nest.
  EXPECT_EQ(kernel_.PortSetAdd(*server, *set1, *set2), base::Status::kInvalidArgument);
  // A port belongs to at most one set.
  ASSERT_EQ(kernel_.PortSetAdd(*server, *set1, *port), base::Status::kOk);
  EXPECT_EQ(kernel_.PortSetAdd(*server, *set2, *port), base::Status::kAlreadyExists);
  // Remove, then re-add elsewhere.
  ASSERT_EQ(kernel_.PortSetRemove(*server, *set1, *port), base::Status::kOk);
  EXPECT_EQ(kernel_.PortSetRemove(*server, *set1, *port), base::Status::kNotFound);
  EXPECT_EQ(kernel_.PortSetAdd(*server, *set2, *port), base::Status::kOk);
  // Only a set can be a set.
  auto plain = kernel_.PortAllocate(*server);
  EXPECT_EQ(kernel_.PortSetAdd(*server, *plain, *port), base::Status::kInvalidRight);
}

}  // namespace
}  // namespace mk
