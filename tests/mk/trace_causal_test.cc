// Causal request-tracing contract tests: the kernel carries a TraceContext
// across every RPC rendezvous, so spans opened in a server handler chain
// onto the caller's trace; port queue wait is attributed per hop; the
// request-tree report is deterministic; and — as for the rest of the
// tracer — the whole machinery charges zero simulated cycles.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/drv/disk_driver.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mk/rpc_robust.h"
#include "src/mk/server_loop.h"
#include "src/mk/trace/exporters.h"
#include "src/pers/unixp/unix.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/inode_fs.h"

namespace mk {
namespace {

constexpr uint32_t kEchoOp = 1;

// First span of `kind` (lowest id), or nullptr.
const trace::Tracer::SpanMeta* FindSpan(Kernel& kernel, trace::SpanKind kind) {
  for (const auto& [id, meta] : kernel.tracer().spans()) {
    if (meta.kind == kind) {
      return &meta;
    }
  }
  return nullptr;
}

std::vector<const trace::Tracer::SpanMeta*> ChildrenOf(Kernel& kernel, uint64_t parent) {
  std::vector<const trace::Tracer::SpanMeta*> out;
  for (const auto& [id, meta] : kernel.tracer().spans()) {
    if (meta.parent == parent) {
      out.push_back(&meta);
    }
  }
  return out;
}

uint64_t SpanIdOf(Kernel& kernel, const trace::Tracer::SpanMeta* meta) {
  for (const auto& [id, m] : kernel.tracer().spans()) {
    if (&m == meta) {
      return id;
    }
  }
  return 0;
}

// Echo servers on their own tasks; a server built over another server's
// index RPCs into it from inside the handler before replying (multi-hop).
struct EchoSystem {
  explicit EchoSystem(Kernel& kernel) : kernel_(kernel) {}

  size_t AddServer(const std::string& name, int nested_over = -1) {
    Task* task = kernel_.CreateTask(name);
    auto recv = kernel_.PortAllocate(*task);
    WPOS_CHECK(recv.ok());
    PortName nested_send = kNullPort;
    if (nested_over >= 0) {
      nested_send = GrantTo(static_cast<size_t>(nested_over), *task);
    }
    auto loop = std::make_shared<ServerLoop>(*recv, name, 64);
    loop->Register(kEchoOp, [nested_send](Env& env, const RpcRequest& request,
                                          const uint8_t* req, const uint8_t*, uint32_t) {
      if (nested_send != kNullPort) {
        uint32_t inner[2] = {kEchoOp, 7};
        uint32_t inner_reply[2] = {};
        (void)env.RpcCall(nested_send, inner, sizeof(inner), inner_reply, sizeof(inner_reply));
      }
      env.RpcReply(request.token, req, request.req_len);
    });
    kernel_.CreateThread(task, "loop", [loop](Env& env) { loop->Run(env); });
    tasks_.push_back(task);
    loops_.push_back(loop);
    ports_.push_back(*recv);
    return tasks_.size() - 1;
  }

  PortName GrantTo(size_t server, Task& client) {
    auto send = kernel_.MakeSendRight(*tasks_[server], ports_[server], client);
    WPOS_CHECK(send.ok());
    return *send;
  }

  void StopAll() {
    for (auto& loop : loops_) {
      loop->Stop();
    }
  }

  Kernel& kernel_;
  std::vector<Task*> tasks_;
  std::vector<std::shared_ptr<ServerLoop>> loops_;
  std::vector<PortName> ports_;
};

TEST(CausalTrace, ServerHandlerJoinsCallersTrace) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  EchoSystem sys(kernel);
  sys.AddServer("echo");
  Task* client_task = kernel.CreateTask("client");
  const PortName send = sys.GrantTo(0, *client_task);
  kernel.CreateThread(client_task, "client", [&](Env& env) {
    uint32_t req[2] = {kEchoOp, 42};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply)), base::Status::kOk);
    sys.StopAll();
  });
  EXPECT_EQ(kernel.Run(), 0u);

  const trace::Tracer::SpanMeta* rpc = FindSpan(kernel, trace::SpanKind::kRpc);
  ASSERT_NE(rpc, nullptr);
  EXPECT_EQ(rpc->parent, 0u);            // the client call roots the trace
  EXPECT_NE(rpc->trace_id, 0u);
  EXPECT_EQ(rpc->label, "echo");         // labeled with the server task name
  const trace::Tracer::SpanMeta* op = FindSpan(kernel, trace::SpanKind::kServerOp);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->parent, SpanIdOf(kernel, rpc));
  EXPECT_EQ(op->trace_id, rpc->trace_id);
  // Hop boundaries bracket the latency buckets in order.
  EXPECT_GT(rpc->dispatch_cycle, rpc->begin_cycle);
  EXPECT_GT(rpc->reply_cycle, rpc->dispatch_cycle);
  EXPECT_GE(rpc->end_cycle, rpc->reply_cycle);
}

TEST(CausalTrace, NestedRpcBuildsOneTreeAcrossThreeTasks) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  EchoSystem sys(kernel);
  const size_t backend = sys.AddServer("backend");
  const size_t frontend = sys.AddServer("frontend", static_cast<int>(backend));
  Task* client_task = kernel.CreateTask("client");
  const PortName send = sys.GrantTo(frontend, *client_task);
  kernel.CreateThread(client_task, "client", [&](Env& env) {
    uint32_t req[2] = {kEchoOp, 1};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply)), base::Status::kOk);
    sys.StopAll();
  });
  EXPECT_EQ(kernel.Run(), 0u);

  // One trace: client rpc -> frontend server_op -> nested rpc -> backend
  // server_op, spanning three tasks.
  const trace::Tracer::SpanMeta* root = nullptr;
  uint64_t root_id = 0;
  for (const auto& [id, meta] : kernel.tracer().spans()) {
    if (meta.kind == trace::SpanKind::kRpc && meta.parent == 0) {
      root = &meta;
      root_id = id;
      break;
    }
  }
  ASSERT_NE(root, nullptr);
  auto ops = ChildrenOf(kernel, root_id);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->kind, trace::SpanKind::kServerOp);
  auto nested = ChildrenOf(kernel, SpanIdOf(kernel, ops[0]));
  ASSERT_GE(nested.size(), 1u);
  EXPECT_EQ(nested[0]->kind, trace::SpanKind::kRpc);
  auto backend_ops = ChildrenOf(kernel, SpanIdOf(kernel, nested[0]));
  ASSERT_GE(backend_ops.size(), 1u);
  EXPECT_EQ(backend_ops[0]->trace_id, root->trace_id);
  // Three distinct tasks appear on the one trace.
  EXPECT_NE(ops[0]->task, root->task);
  EXPECT_NE(backend_ops[0]->task, ops[0]->task);
}

TEST(CausalTrace, ContendedPortRecordsQueueWait) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  EchoSystem sys(kernel);
  sys.AddServer("hot");
  Task* a_task = kernel.CreateTask("client-a");
  Task* b_task = kernel.CreateTask("client-b");
  const PortName send_a = sys.GrantTo(0, *a_task);
  const PortName send_b = sys.GrantTo(0, *b_task);
  int done = 0;
  auto client = [&](PortName send) {
    return [&, send](Env& env) {
      uint32_t req[2] = {kEchoOp, 9};
      uint32_t reply[2] = {};
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(env.RpcCall(send, req, sizeof(req), reply, sizeof(reply)), base::Status::kOk);
      }
      if (++done == 2) {
        sys.StopAll();
      }
    };
  };
  kernel.CreateThread(a_task, "a", client(send_a));
  kernel.CreateThread(b_task, "b", client(send_b));
  EXPECT_EQ(kernel.Run(), 0u);

  // Every dispatched RPC records a queue-wait sample (0 for a direct
  // rendezvous), and with two clients hammering one single-threaded server
  // some calls really queued: a non-zero maximum, visible in both the
  // global histogram and the per-server labeled one.
  const trace::Histogram& wait = kernel.tracer().metrics().Hist("mk.rpc.queue_wait_cycles");
  EXPECT_EQ(wait.count(), 20u);
  EXPECT_GT(wait.max(), 0u);
  const trace::Histogram& labeled =
      kernel.tracer().metrics().Hist("mk.rpc.queue_wait_cycles.hot");
  EXPECT_EQ(labeled.count(), 20u);
  EXPECT_GT(labeled.max(), 0u);
  bool saw_queued = false;
  for (const auto& [id, meta] : kernel.tracer().spans()) {
    if (meta.kind == trace::SpanKind::kRpc && meta.queued_cycle != 0) {
      saw_queued = true;
      EXPECT_GE(meta.dispatch_cycle, meta.queued_cycle);
    }
  }
  EXPECT_TRUE(saw_queued);
}

// A robust echo call with a seeded first-attempt copy fault; the retry
// succeeds. Used for the one-trace-per-request property, the zero-cost
// comparison and the deterministic-report comparison.
struct RobustRun {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<EchoSystem> sys;
  hw::CpuCounters counters;
};

RobustRun RunRobustRetryWorkload(bool traced) {
  RobustRun run;
  run.machine =
      std::make_unique<hw::Machine>(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  run.kernel = std::make_unique<Kernel>(run.machine.get());
  Kernel& kernel = *run.kernel;
  if (traced) {
    kernel.tracer().Enable();
  }
  kernel.faults().Enable(3);
  kernel.faults().Arm(fault::FaultPoint::kMessageCopy, fault::FaultMode::kTransientError, 100,
                      /*max_fires=*/1);
  run.sys = std::make_unique<EchoSystem>(kernel);
  EchoSystem& sys = *run.sys;
  sys.AddServer("flaky");
  Task* client_task = kernel.CreateTask("client");
  const PortName send = sys.GrantTo(0, *client_task);
  kernel.CreateThread(client_task, "client", [&kernel, &sys, send](Env& env) {
    PortName cached = send;
    const PortResolver resolver = [send](Env&) -> base::Result<PortName> { return send; };
    RobustCallOptions opts;
    opts.attempt_timeout_ns = 5'000'000;
    uint32_t req[2] = {kEchoOp, 123};
    uint32_t reply[2] = {};
    EXPECT_EQ(RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply), opts),
              base::Status::kOk);
    EXPECT_EQ(reply[1], 123u);
    sys.StopAll();
  });
  EXPECT_EQ(kernel.Run(), 0u);
  run.counters = kernel.Counters();
  return run;
}

TEST(CausalTrace, RobustRetryKeepsOneTraceId) {
  const RobustRun run = RunRobustRetryWorkload(/*traced=*/true);
  Kernel& kernel = *run.kernel;

  // One umbrella robust span; both attempts are child rpc spans of it and
  // share its trace id — the retry did not start a fresh trace.
  const trace::Tracer::SpanMeta* robust = FindSpan(kernel, trace::SpanKind::kRpcRobust);
  ASSERT_NE(robust, nullptr);
  EXPECT_EQ(robust->parent, 0u);
  EXPECT_EQ(robust->end_arg, static_cast<uint64_t>(base::Status::kOk));
  std::vector<const trace::Tracer::SpanMeta*> attempts;
  for (const auto* child : ChildrenOf(kernel, SpanIdOf(kernel, robust))) {
    if (child->kind == trace::SpanKind::kRpc) {
      attempts.push_back(child);
    }
  }
  ASSERT_EQ(attempts.size(), 2u);  // the faulted attempt and the retry
  for (const auto* attempt : attempts) {
    EXPECT_EQ(attempt->trace_id, robust->trace_id);
  }
}

TEST(CausalTrace, TracedRunCountersMatchUntracedExactly) {
  const RobustRun untraced = RunRobustRetryWorkload(false);
  const RobustRun traced = RunRobustRetryWorkload(true);
  EXPECT_EQ(traced.counters.instructions, untraced.counters.instructions);
  EXPECT_EQ(traced.counters.cycles, untraced.counters.cycles);
  EXPECT_EQ(traced.counters.bus_cycles, untraced.counters.bus_cycles);
  EXPECT_EQ(traced.counters.icache_misses, untraced.counters.icache_misses);
  EXPECT_EQ(traced.counters.dcache_misses, untraced.counters.dcache_misses);
  EXPECT_EQ(traced.counters.tlb_misses, untraced.counters.tlb_misses);
}

TEST(CausalTrace, RequestTreeReportIsByteIdenticalAcrossRuns) {
  std::string reports[2];
  for (std::string& report : reports) {
    const RobustRun run = RunRobustRetryWorkload(/*traced=*/true);
    std::ostringstream os;
    trace::WriteRequestTrees(os, *run.kernel);
    report = os.str();
  }
  EXPECT_FALSE(reports[0].empty());
  EXPECT_NE(reports[0].find("causal request trees"), std::string::npos);
  EXPECT_NE(reports[0].find("queue_wait="), std::string::npos);
  EXPECT_NE(reports[0].find("rpc_robust"), std::string::npos);
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(CausalTrace, LogLinesCarryTheActiveTraceId) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  Task* task = kernel.CreateTask("app");
  kernel.CreateThread(task, "main", [&](Env& env) {
    {
      base::ScopedLogCapture capture;
      WPOS_LOG(kWarn) << "outside any span";
      EXPECT_FALSE(capture.Contains("trace="));
    }
    trace::ScopedSpan span(kernel.tracer(), trace::SpanKind::kApi, trace::EventType::kApiCall,
                           trace::EventType::kApiReturn);
    base::ScopedLogCapture capture;
    WPOS_LOG(kWarn) << "inside the request";
    EXPECT_TRUE(capture.Contains(" trace=" +
                                 std::to_string(kernel.tracer().SpanTraceId(span.id()))));
  });
  EXPECT_EQ(kernel.Run(), 0u);
}

// The acceptance scenario: a UNIX read() through the personality, the file
// server and the user-level disk driver renders as ONE causal tree spanning
// all three server tasks.
TEST(CausalTrace, UnixReadSpansPersonalityFsAndDriver) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  Kernel kernel(&machine);
  kernel.tracer().Enable();
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(
      std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 64 * 1024})));
  Task* driver_task = kernel.CreateTask("disk-driver");
  drv::DiskDriver driver(kernel, driver_task, disk, nullptr);
  Task* fs_task = kernel.CreateTask("file-server");
  drv::RpcBlockStore store(driver.GrantTo(*fs_task), disk->num_sectors());
  // Tiny cache: the traced read() must miss and take the third hop.
  svc::BlockCache cache(kernel, &store, 16);
  svc::HpfsFs hpfs(kernel, &cache, 65536);
  svc::FileServer fs(kernel, fs_task);
  ASSERT_EQ(fs.AddMount("/", &hpfs), base::Status::kOk);
  bool formatted = false;
  kernel.CreateThread(fs_task, "mkfs", [&](Env& env) {
    ASSERT_EQ(hpfs.Format(env), base::Status::kOk);
    formatted = true;
  });
  pers::UnixPersonality unix_pers(kernel, fs);
  pers::UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("reader", [&](Env& env) {
    while (!formatted) {
      env.SleepNs(200'000);
    }
    char block[1024];
    std::memset(block, 'x', sizeof(block));
    auto fd = proc->Open(env, "/data.bin", pers::kOCreat | pers::kORdWr);
    ASSERT_TRUE(fd.ok());
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(proc->Write(env, *fd, block, sizeof(block)).ok());
    }
    ASSERT_TRUE(proc->Lseek(env, *fd, 0, 0).ok());
    ASSERT_TRUE(proc->Read(env, *fd, block, sizeof(block)).ok());
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    fs.Stop();
    svc::FsClient unblock(fs.GrantTo(*proc->task()));
    (void)unblock.Sync(env);
    driver.Stop();
    kernel.TerminateTask(driver_task);
  });
  kernel.Run();

  // Find the read() API span and collect the tasks on its subtree.
  const trace::Tracer::SpanMeta* read_span = nullptr;
  uint64_t read_id = 0;
  for (const auto& [id, meta] : kernel.tracer().spans()) {
    if (meta.kind == trace::SpanKind::kApi && meta.label == "unix.read") {
      read_span = &meta;
      read_id = id;
    }
  }
  ASSERT_NE(read_span, nullptr);
  std::vector<uint64_t> frontier = {read_id};
  std::set<TaskId> tasks_on_tree = {read_span->task};
  size_t tree_size = 1;
  while (!frontier.empty()) {
    const uint64_t node = frontier.back();
    frontier.pop_back();
    for (const auto* child : ChildrenOf(kernel, node)) {
      EXPECT_EQ(child->trace_id, read_span->trace_id);
      tasks_on_tree.insert(child->task);
      frontier.push_back(SpanIdOf(kernel, child));
      ++tree_size;
    }
  }
  EXPECT_GE(tree_size, 5u);  // api + rpc + fs op + nested rpc + driver op
  EXPECT_NE(tasks_on_tree.count(fs_task->id()), 0u);
  EXPECT_NE(tasks_on_tree.count(driver_task->id()), 0u);
  EXPECT_GE(tasks_on_tree.size(), 3u);  // personality + fs + driver
}

}  // namespace
}  // namespace mk
