// Kernel state analyzer tests: wait-for-graph deadlock detection and the
// object-graph invariant checker (src/mk/analysis/).
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "src/mk/analysis/wait_for_graph.h"
#include "src/mk/kernel.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// The acceptance scenario: two single-threaded servers whose handlers call
// each other. A's server, while serving a client request, calls B; B's
// server, serving that, calls back into A — whose only thread is busy. The
// detector must report the exact thread -> port -> task cycle.
TEST_F(KernelTest, TwoServerRpcCycleIsReportedExactly) {
  check_deadlocks_on_teardown_ = false;  // the deadlock is the point

  Task* task_a = kernel_.CreateTask("A");
  Task* task_b = kernel_.CreateTask("B");
  Task* task_c = kernel_.CreateTask("C");
  auto port_a = kernel_.PortAllocate(*task_a);
  auto port_b = kernel_.PortAllocate(*task_b);
  ASSERT_TRUE(port_a.ok());
  ASSERT_TRUE(port_b.ok());
  auto a_to_b = kernel_.MakeSendRight(*task_b, *port_b, *task_a);
  auto b_to_a = kernel_.MakeSendRight(*task_a, *port_a, *task_b);
  auto c_to_a = kernel_.MakeSendRight(*task_a, *port_a, *task_c);
  const uint64_t port_a_id = (*kernel_.ResolvePort(*task_a, *port_a))->id();
  const uint64_t port_b_id = (*kernel_.ResolvePort(*task_b, *port_b))->id();

  uint32_t buf = 0;
  uint32_t rep = 0;
  Thread* sa = kernel_.CreateThread(task_a, "sa", [&, b = *a_to_b, pa = *port_a](Env& env) {
    auto req = env.RpcReceive(pa, &buf, sizeof(buf));
    ASSERT_TRUE(req.ok());
    // Serving A requires calling B — while our only thread is busy here.
    (void)env.RpcCall(b, &buf, sizeof(buf), &rep, sizeof(rep));
  });
  Thread* sb = kernel_.CreateThread(task_b, "sb", [&, a = *b_to_a, pb = *port_b](Env& env) {
    auto req = env.RpcReceive(pb, &buf, sizeof(buf));
    ASSERT_TRUE(req.ok());
    // Serving B requires calling back into A: the cycle closes.
    (void)env.RpcCall(a, &buf, sizeof(buf), &rep, sizeof(rep));
  });
  Thread* client = kernel_.CreateThread(task_c, "client", [&, a = *c_to_a](Env& env) {
    uint32_t req = 7;
    (void)env.RpcCall(a, &req, sizeof(req), &rep, sizeof(rep));
  });

  EXPECT_EQ(kernel_.Run(), 3u);  // sa, sb and the client all stuck
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);  // deadlocked but structurally sound

  analysis::WaitForGraph graph = analysis::WaitForGraph::Build(kernel_);
  const analysis::WaitEdge* sa_edge = graph.EdgeFor(sa);
  const analysis::WaitEdge* sb_edge = graph.EdgeFor(sb);
  const analysis::WaitEdge* client_edge = graph.EdgeFor(client);
  ASSERT_NE(sa_edge, nullptr);
  ASSERT_NE(sb_edge, nullptr);
  ASSERT_NE(client_edge, nullptr);
  EXPECT_EQ(sa_edge->kind, analysis::WaitKind::kRpcAwaitingReply);
  EXPECT_EQ(sa_edge->port->id(), port_b_id);
  EXPECT_EQ(sb_edge->kind, analysis::WaitKind::kRpcAwaitingServer);
  EXPECT_EQ(sb_edge->port->id(), port_a_id);
  EXPECT_EQ(client_edge->kind, analysis::WaitKind::kRpcAwaitingReply);

  // All three threads are deadlocked (the client hangs off the cycle)...
  const auto deadlocked = graph.DeadlockedThreads();
  EXPECT_EQ(deadlocked.size(), 3u);

  // ...but exactly one cycle exists: sa <-> sb.
  const auto cycles = graph.FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].size(), 2u);
  EXPECT_NE(std::find(cycles[0].begin(), cycles[0].end(), sa), cycles[0].end());
  EXPECT_NE(std::find(cycles[0].begin(), cycles[0].end(), sb), cycles[0].end());

  // The rendered report names both threads, both tasks, and both ports.
  const auto reports = graph.FindCycleReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(Contains(reports[0], "thread 'sa' (task 'A')")) << reports[0];
  EXPECT_TRUE(Contains(reports[0], "thread 'sb' (task 'B')")) << reports[0];
  EXPECT_TRUE(Contains(reports[0], "port " + std::to_string(port_a_id))) << reports[0];
  EXPECT_TRUE(Contains(reports[0], "port " + std::to_string(port_b_id))) << reports[0];
  EXPECT_TRUE(Contains(reports[0], "awaiting RPC reply")) << reports[0];
  EXPECT_TRUE(Contains(reports[0], "waiting for a server")) << reports[0];
}

// Halt() explains WHY a thread is still blocked, not just how many are.
TEST_F(KernelTest, HaltReportsWhyThreadsAreBlocked) {
  Task* task = kernel_.CreateTask("lonely");
  auto port = kernel_.PortAllocate(*task);
  ASSERT_TRUE(port.ok());
  Thread* t = kernel_.CreateThread(task, "receiver", [p = *port](Env& env) {
    MachMessage msg;
    (void)env.kernel().MachMsgReceive(p, &msg);  // nobody will ever send
  });
  EXPECT_EQ(kernel_.Run(), 1u);

  analysis::WaitForGraph graph = analysis::WaitForGraph::Build(kernel_);
  const analysis::WaitEdge* edge = graph.EdgeFor(t);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->kind, analysis::WaitKind::kIpcReceiveEmpty);
  EXPECT_FALSE(edge->external_wake);
  const std::string why = graph.DescribeBlocked(t);
  EXPECT_TRUE(Contains(why, "thread 'receiver' (task 'lonely')")) << why;
  EXPECT_TRUE(Contains(why, "MachMsgReceive")) << why;
  EXPECT_TRUE(Contains(why, "queue empty")) << why;
  // Stuck forever, but a single node with no self-edge is not a cycle.
  EXPECT_EQ(graph.DeadlockedThreads().size(), 1u);
  EXPECT_TRUE(graph.FindCycles().empty());
}

// A receiver waiting on a port fed by a periodic timer is NOT deadlocked:
// the timer is an external wake source.
TEST_F(KernelTest, TimerFedReceiverIsNotDeadlocked) {
  Task* task = kernel_.CreateTask("driver");
  auto port = kernel_.PortAllocate(*task);
  ASSERT_TRUE(port.ok());
  auto timer = kernel_.TimerArmPeriodic(*task, *port, 1'000'000);
  ASSERT_TRUE(timer.ok());
  kernel_.CreateThread(task, "ticker", [p = *port, tid = *timer](Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(p, &msg), base::Status::kOk);
    ASSERT_EQ(env.kernel().TimerCancel(tid), base::Status::kOk);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// Teardown invariant: a task killed while its port still holds queued
// messages leaves a consistent graph. Task death destroys its receive
// ports (so senders observe kPortDead instead of queueing into a void),
// which drops the queued messages with them.
TEST_F(KernelTest, KillTaskWithQueuedMessagesStaysConsistent) {
  Task* victim = kernel_.CreateTask("victim");
  Task* sender = kernel_.CreateTask("sender");
  auto recv = kernel_.PortAllocate(*victim);
  ASSERT_TRUE(recv.ok());
  auto send = kernel_.MakeSendRight(*victim, *recv, *sender);
  ASSERT_TRUE(send.ok());
  kernel_.CreateThread(sender, "s", [&, dst = *send](Env& env) {
    for (int i = 0; i < 3; ++i) {
      MachMessage msg;
      msg.dest = dst;
      msg.msg_id = 100 + i;
      ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
    }
    env.kernel().TerminateTask(env.kernel().tasks()[0].get());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  Port* port = *kernel_.ResolvePort(*victim, *recv);
  EXPECT_TRUE(port->dead());         // task death takes its ports with it
  EXPECT_TRUE(port->queue.empty());  // a dead port keeps nothing
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
  EXPECT_EQ(kernel_.PortDestroy(*victim, *recv), base::Status::kOk);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Teardown invariant: destroying a port-set member detaches it from the set
// in both directions; destroying the set releases all members.
TEST_F(KernelTest, PortSetMemberDeathDetachesLinks) {
  Task* task = kernel_.CreateTask("srv");
  auto set = kernel_.PortSetAllocate(*task);
  auto m1 = kernel_.PortAllocate(*task);
  auto m2 = kernel_.PortAllocate(*task);
  ASSERT_EQ(kernel_.PortSetAdd(*task, *set, *m1), base::Status::kOk);
  ASSERT_EQ(kernel_.PortSetAdd(*task, *set, *m2), base::Status::kOk);
  Port* set_port = *kernel_.ResolvePort(*task, *set);
  Port* m1_port = *kernel_.ResolvePort(*task, *m1);
  Port* m2_port = *kernel_.ResolvePort(*task, *m2);

  ASSERT_EQ(kernel_.PortDestroy(*task, *m1), base::Status::kOk);
  EXPECT_EQ(m1_port->member_of, nullptr);
  EXPECT_EQ(set_port->set_members.size(), 1u);
  EXPECT_EQ(set_port->set_members.front(), m2_port);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);

  ASSERT_EQ(kernel_.PortDestroy(*task, *set), base::Status::kOk);
  EXPECT_EQ(m2_port->member_of, nullptr);
  EXPECT_TRUE(set_port->set_members.empty());
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// The checker actually detects corruption (and says what broke).
TEST_F(KernelTest, InvariantCheckerFlagsCorruption) {
  Task* task = kernel_.CreateTask("t");
  auto set = kernel_.PortSetAllocate(*task);
  auto member = kernel_.PortAllocate(*task);
  Port* set_port = *kernel_.ResolvePort(*task, *set);
  Port* member_port = *kernel_.ResolvePort(*task, *member);

  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
  member_port->member_of = set_port;  // one-way link: corrupt
  EXPECT_GE(kernel_.CheckInvariants(), 1u);
  member_port->member_of = nullptr;  // restore for teardown
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// The every-N-kernel-entries cadence (KernelConfig::invariant_check_interval)
// holds across a live RPC workload.
TEST(KernelAnalysisCadenceTest, InvariantsHoldOnEveryKernelEntry) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  KernelConfig config;
  config.invariant_check_interval = 1;  // check at every kernel entry
  Kernel kernel(&machine, config);

  Task* server = kernel.CreateTask("server");
  Task* client = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server);
  auto send = kernel.MakeSendRight(*server, *recv, *client);
  kernel.CreateThread(server, "s", [&, p = *recv](Env& env) {
    for (int i = 0; i < 4; ++i) {
      uint32_t buf = 0;
      auto req = env.RpcReceive(p, &buf, sizeof(buf));
      ASSERT_TRUE(req.ok());
      uint32_t rep = buf + 1;
      ASSERT_EQ(env.RpcReply(req->token, &rep, sizeof(rep)), base::Status::kOk);
    }
  });
  kernel.CreateThread(client, "c", [&, p = *send](Env& env) {
    for (uint32_t i = 0; i < 4; ++i) {
      uint32_t rep = 0;
      ASSERT_EQ(env.RpcCall(p, &i, sizeof(i), &rep, sizeof(rep)), base::Status::kOk);
      ASSERT_EQ(rep, i + 1);
    }
  });
  EXPECT_EQ(kernel.Run(), 0u);
  EXPECT_EQ(kernel.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace mk
