// Mutation self-test for the concurrency checker. This binary is compiled
// with WPOS_EXPLORE_SELFTEST, which compiles the semaphore guard out of the
// seeded-tally workload (src/mk/analysis/explore/selftest.h). The checker
// must catch the seeded bug both ways: the explorer must find a schedule
// that loses an update (the Verify oracle fails) and leave a replayable
// trace, and the lockset/vector-clock detector must flag the unguarded cell.
// If this binary ever passes its workload as clean, the checker has a hole.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "src/mk/analysis/explore/explorer.h"
#include "src/mk/analysis/explore/selftest.h"
#include "src/mk/kernel.h"
#include "tests/mk/explore_fixture.h"

#ifndef WPOS_EXPLORE_SELFTEST
#error "explore_selftest must be built with -DWPOS_EXPLORE_SELFTEST"
#endif

namespace mk {
namespace {

using analysis::explore::Options;
using analysis::explore::Result;
using analysis::explore::ScheduleExplorer;
using analysis::explore::SeededTally;

TEST(ExploreSelfTest, SeededRaceIsCaughtFlaggedAndReplayable) {
  auto slot = std::make_shared<std::shared_ptr<SeededTally>>();
  ScheduleExplorer::Setup setup = [slot](Kernel& kernel) {
    *slot = analysis::explore::InstallSeededTally(kernel);
  };
  ScheduleExplorer::Verify verify = [slot](Kernel&, std::string* message) {
    if ((*slot)->value != 2) {
      *message = "lost update: tally = " + std::to_string((*slot)->value);
      return false;
    }
    return true;
  };

  const std::string trace_dir = EnvTraceDir() + "/explore_selftest";
  Options options;
  options.name = "seeded_race";
  options.preemption_bound = EnvPreemptionBound(2);
  options.trace_dir = trace_dir;
  ScheduleExplorer explorer(options, setup, verify);
  Result result = explorer.Explore();

  // The explorer found a losing interleaving...
  ASSERT_FALSE(result.ok());
  const auto& failure = result.failures.front();
  EXPECT_EQ(failure.kind, "verify");
  EXPECT_NE(failure.message.find("lost update"), std::string::npos) << failure.message;

  // ...and the lockset detector flagged the unguarded cell independently.
  ASSERT_FALSE(result.races.empty());
  bool tally_cell_flagged = false;
  for (const auto& race : result.races) {
    if (race.cell == (*slot)->cell >> 4) {
      tally_cell_flagged = true;
    }
  }
  EXPECT_TRUE(tally_cell_flagged) << result.races.front().Describe();

  // The failing schedule replays deterministically to the same verdict.
  ASSERT_FALSE(failure.schedule_file.empty());
  std::string message;
  ASSERT_TRUE(ScheduleExplorer::Replay(failure.schedule_file, setup, verify, &message));
  EXPECT_EQ(message.rfind("verify", 0), 0u) << message;
  EXPECT_TRUE(std::filesystem::exists(trace_dir + "/seeded_race.failing.trace.json"));
}

TEST(ExploreSelfTest, RaceFailureModeStopsTheSearch) {
  auto slot = std::make_shared<std::shared_ptr<SeededTally>>();
  Options options;
  options.name = "seeded_race_failfast";
  options.preemption_bound = EnvPreemptionBound(2);
  options.fail_on_race = true;
  Result result = RunExploration(
      options, [slot](Kernel& kernel) { *slot = analysis::explore::InstallSeededTally(kernel); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failures.front().kind, "race");
  EXPECT_FALSE(result.races.empty());
}

}  // namespace
}  // namespace mk
