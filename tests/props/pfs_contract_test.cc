// Property-style contract tests run against every physical file system
// (FAT, HPFS, JFS): whatever their on-disk format, the Pfs interface must
// behave like a file system. A host-side oracle (std::map of name -> bytes)
// checks every operation's result after randomized op sequences.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/base/rng.h"
#include "src/svc/fs/fat.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace svc {
namespace {

enum class PfsKind { kFat, kHpfs, kJfs };

std::string KindName(PfsKind k) {
  switch (k) {
    case PfsKind::kFat:
      return "fat";
    case PfsKind::kHpfs:
      return "hpfs";
    case PfsKind::kJfs:
      return "jfs";
  }
  return "?";
}

class PfsContractTest : public mk::KernelTest,
                        public ::testing::WithParamInterface<PfsKind> {
 protected:
  PfsContractTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 5'000);
    cache_ = std::make_unique<BlockCache>(kernel_, store_.get(), 2048);
    switch (GetParam()) {
      case PfsKind::kFat:
        fat_ = std::make_unique<FatFs>(kernel_, cache_.get(), 32768);
        pfs_ = fat_.get();
        break;
      case PfsKind::kHpfs:
        inode_ = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);
        pfs_ = inode_.get();
        break;
      case PfsKind::kJfs:
        inode_ = std::make_unique<JfsFs>(kernel_, cache_.get(), 65536);
        pfs_ = inode_.get();
        break;
    }
  }

  void RunInThread(std::function<void(mk::Env&)> body) {
    mk::Task* task = kernel_.CreateTask("t");
    kernel_.CreateThread(task, "t", std::move(body));
    ASSERT_EQ(kernel_.Run(), 0u);
  }

  base::Status Format(mk::Env& env) {
    if (fat_ != nullptr) {
      return fat_->Format(env);
    }
    return inode_->Format(env);
  }

  // A legal file name for every PFS under test (8.3-safe).
  static std::string Name(int i) { return "F" + std::to_string(i) + ".DAT"; }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<FatFs> fat_;
  std::unique_ptr<InodeFs> inode_;
  Pfs* pfs_ = nullptr;
};

TEST_P(PfsContractTest, WriteReadRoundTripAcrossSizes) {
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(Format(env), base::Status::kOk);
    // Sizes chosen to hit sector boundaries, cluster boundaries, and the
    // indirect-block threshold.
    const uint32_t sizes[] = {1, 511, 512, 513, 2047, 2048, 4096, 10000, 20000};
    int i = 0;
    for (uint32_t size : sizes) {
      auto node = pfs_->Create(env, pfs_->root(), Name(i), false);
      ASSERT_TRUE(node.ok()) << KindName(GetParam()) << " size " << size;
      std::vector<uint8_t> data(size);
      base::Rng rng(size);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      auto wrote = pfs_->Write(env, *node, 0, data.data(), size);
      ASSERT_TRUE(wrote.ok());
      ASSERT_EQ(*wrote, size);
      std::vector<uint8_t> back(size);
      auto got = pfs_->Read(env, *node, 0, back.data(), size);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, size);
      EXPECT_EQ(back, data) << KindName(GetParam()) << " size " << size;
      auto attr = pfs_->GetAttr(env, *node);
      ASSERT_TRUE(attr.ok());
      EXPECT_EQ(attr->size, size);
      ++i;
    }
  });
}

TEST_P(PfsContractTest, OverwriteInMiddlePreservesRest) {
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(Format(env), base::Status::kOk);
    auto node = pfs_->Create(env, pfs_->root(), "MID.DAT", false);
    ASSERT_TRUE(node.ok());
    std::vector<uint8_t> data(6000, 0x11);
    ASSERT_TRUE(pfs_->Write(env, *node, 0, data.data(), 6000).ok());
    std::vector<uint8_t> patch(100, 0x99);
    ASSERT_TRUE(pfs_->Write(env, *node, 2500, patch.data(), 100).ok());
    std::vector<uint8_t> back(6000);
    ASSERT_TRUE(pfs_->Read(env, *node, 0, back.data(), 6000).ok());
    EXPECT_EQ(back[2499], 0x11);
    EXPECT_EQ(back[2500], 0x99);
    EXPECT_EQ(back[2599], 0x99);
    EXPECT_EQ(back[2600], 0x11);
    auto attr = pfs_->GetAttr(env, *node);
    EXPECT_EQ(attr->size, 6000u) << "overwrite must not grow the file";
  });
}

TEST_P(PfsContractTest, ReadPastEofTruncates) {
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(Format(env), base::Status::kOk);
    auto node = pfs_->Create(env, pfs_->root(), "EOF.DAT", false);
    ASSERT_TRUE(node.ok());
    ASSERT_TRUE(pfs_->Write(env, *node, 0, "12345", 5).ok());
    char buf[32];
    auto got = pfs_->Read(env, *node, 3, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 2u);
    got = pfs_->Read(env, *node, 5, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 0u);
    got = pfs_->Read(env, *node, 100, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 0u);
  });
}

TEST_P(PfsContractTest, DirectoryListingMatchesOracle) {
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(Format(env), base::Status::kOk);
    std::map<std::string, bool> oracle;  // name -> is_dir
    for (int i = 0; i < 12; ++i) {
      const bool dir = i % 3 == 0;
      const std::string name = (dir ? "D" : "F") + std::to_string(i);
      ASSERT_TRUE(pfs_->Create(env, pfs_->root(), name, dir).ok());
      oracle[name] = dir;
    }
    // Remove a few.
    ASSERT_EQ(pfs_->Remove(env, pfs_->root(), "F1"), base::Status::kOk);
    ASSERT_EQ(pfs_->Remove(env, pfs_->root(), "D6"), base::Status::kOk);
    oracle.erase("F1");
    oracle.erase("D6");
    auto entries = pfs_->ReadDir(env, pfs_->root());
    ASSERT_TRUE(entries.ok());
    std::map<std::string, bool> found;
    for (const DirEntry& e : *entries) {
      found[e.name] = e.directory;
    }
    EXPECT_EQ(found, oracle) << KindName(GetParam());
  });
}

TEST_P(PfsContractTest, RandomOpsAgainstOracle) {
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(Format(env), base::Status::kOk);
    std::map<std::string, std::vector<uint8_t>> oracle;
    std::map<std::string, NodeId> nodes;
    base::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
    for (int step = 0; step < 150; ++step) {
      const int op = static_cast<int>(rng.NextBelow(4));
      const std::string name = Name(static_cast<int>(rng.NextBelow(8)));
      switch (op) {
        case 0: {  // create
          auto node = pfs_->Create(env, pfs_->root(), name, false);
          if (oracle.contains(name)) {
            EXPECT_EQ(node.status(), base::Status::kAlreadyExists);
          } else {
            ASSERT_TRUE(node.ok());
            oracle[name] = {};
            nodes[name] = *node;
          }
          break;
        }
        case 1: {  // write at random offset within [0, 6K)
          if (!oracle.contains(name)) {
            break;
          }
          const uint64_t off = rng.NextBelow(6000);
          const uint32_t len = static_cast<uint32_t>(rng.NextInRange(1, 700));
          std::vector<uint8_t> data(len);
          for (auto& b : data) {
            b = static_cast<uint8_t>(rng.Next());
          }
          ASSERT_TRUE(pfs_->Write(env, nodes[name], off, data.data(), len).ok());
          auto& file = oracle[name];
          if (file.size() < off + len) {
            file.resize(off + len, 0);
          }
          std::copy(data.begin(), data.end(), file.begin() + static_cast<long>(off));
          break;
        }
        case 2: {  // read-and-compare a random window
          if (!oracle.contains(name)) {
            EXPECT_FALSE(pfs_->Lookup(env, pfs_->root(), name).ok());
            break;
          }
          const auto& file = oracle[name];
          std::vector<uint8_t> buf(800);
          const uint64_t off = rng.NextBelow(file.size() + 100);
          auto got = pfs_->Read(env, nodes[name], off, buf.data(),
                                static_cast<uint32_t>(buf.size()));
          ASSERT_TRUE(got.ok());
          const uint64_t expect =
              off >= file.size() ? 0 : std::min<uint64_t>(buf.size(), file.size() - off);
          ASSERT_EQ(*got, expect);
          for (uint64_t i = 0; i < expect; ++i) {
            ASSERT_EQ(buf[i], file[off + i]) << name << " offset " << off + i;
          }
          break;
        }
        case 3: {  // remove
          const base::Status st = pfs_->Remove(env, pfs_->root(), name);
          if (oracle.contains(name)) {
            ASSERT_EQ(st, base::Status::kOk);
            oracle.erase(name);
            nodes.erase(name);
          } else {
            EXPECT_EQ(st, base::Status::kNotFound);
          }
          break;
        }
      }
    }
    // Everything still readable at the end.
    for (const auto& [name, file] : oracle) {
      std::vector<uint8_t> back(file.size());
      if (!file.empty()) {
        auto got = pfs_->Read(env, nodes[name], 0, back.data(),
                              static_cast<uint32_t>(back.size()));
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(back, file) << name;
      }
    }
  });
}

TEST_P(PfsContractTest, PersistsAcrossRemountWithSameOracle) {
  std::map<std::string, std::vector<uint8_t>> oracle;
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(Format(env), base::Status::kOk);
    base::Rng rng(4242);
    for (int i = 0; i < 5; ++i) {
      const std::string name = Name(i);
      auto node = pfs_->Create(env, pfs_->root(), name, false);
      ASSERT_TRUE(node.ok());
      std::vector<uint8_t> data(rng.NextInRange(100, 3000));
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(pfs_->Write(env, *node, 0, data.data(),
                              static_cast<uint32_t>(data.size())).ok());
      oracle[name] = std::move(data);
    }
    ASSERT_EQ(pfs_->Sync(env), base::Status::kOk);
  });
  // Fresh PFS instance over the same cache+disk.
  std::unique_ptr<FatFs> fat2;
  std::unique_ptr<InodeFs> inode2;
  Pfs* remounted = nullptr;
  switch (GetParam()) {
    case PfsKind::kFat:
      fat2 = std::make_unique<FatFs>(kernel_, cache_.get(), 32768);
      remounted = fat2.get();
      break;
    case PfsKind::kHpfs:
      inode2 = std::make_unique<HpfsFs>(kernel_, cache_.get(), 65536);
      remounted = inode2.get();
      break;
    case PfsKind::kJfs:
      inode2 = std::make_unique<JfsFs>(kernel_, cache_.get(), 65536);
      remounted = inode2.get();
      break;
  }
  RunInThread([&](mk::Env& env) {
    ASSERT_EQ(remounted->Mount(env), base::Status::kOk);
    for (const auto& [name, data] : oracle) {
      auto node = remounted->Lookup(env, remounted->root(), name);
      ASSERT_TRUE(node.ok()) << name;
      std::vector<uint8_t> back(data.size());
      auto got = remounted->Read(env, *node, 0, back.data(),
                                 static_cast<uint32_t>(back.size()));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(back, data) << name;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllFileSystems, PfsContractTest,
                         ::testing::Values(PfsKind::kFat, PfsKind::kHpfs, PfsKind::kJfs),
                         [](const ::testing::TestParamInfo<PfsKind>& info) {
                           return KindName(info.param);
                         });

}  // namespace
}  // namespace svc
