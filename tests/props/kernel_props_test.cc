// Parameterized property sweeps over the microkernel itself.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hw/cache.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mk {
namespace {

// --- RPC payload sweep: bytes survive verbatim at every size -------------------

class RpcPayloadTest : public KernelTest, public ::testing::WithParamInterface<uint32_t> {};

TEST_P(RpcPayloadTest, EchoPreservesEveryByte) {
  const uint32_t size = GetParam();
  Task* server = kernel_.CreateTask("server");
  Task* client = kernel_.CreateTask("client");
  auto recv = kernel_.PortAllocate(*server);
  auto send = kernel_.MakeSendRight(*server, *recv, *client);
  kernel_.CreateThread(server, "s", [&, recv = *recv](mk::Env& env) {
    char buf[512];
    std::vector<uint8_t> bulk(128 * 1024);
    RpcRef ref;
    ref.recv_buf = bulk.data();
    ref.recv_cap = static_cast<uint32_t>(bulk.size());
    auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
    ASSERT_TRUE(req.ok());
    // Echo whichever channel the payload came through.
    if (req->ref_len > 0) {
      env.RpcReply(req->token, buf, req->req_len, bulk.data(), req->ref_len);
    } else {
      env.RpcReply(req->token, buf, req->req_len);
    }
  });
  bool ok = false;
  kernel_.CreateThread(client, "c", [&, send = *send](mk::Env& env) {
    base::Rng rng(size + 1);
    std::vector<uint8_t> payload(size);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    std::vector<uint8_t> reply_inline(512);
    std::vector<uint8_t> reply_bulk(128 * 1024);
    uint32_t reply_len = 0;
    base::Status st;
    if (size <= 256) {
      st = env.RpcCall(send, payload.data(), size, reply_inline.data(),
                       static_cast<uint32_t>(reply_inline.size()), &reply_len);
      ASSERT_EQ(st, base::Status::kOk);
      ASSERT_EQ(reply_len, size);
      ASSERT_TRUE(std::equal(payload.begin(), payload.end(), reply_inline.begin()));
    } else {
      RpcRef ref;
      ref.send_data = payload.data();
      ref.send_len = size;
      ref.recv_buf = reply_bulk.data();
      ref.recv_cap = static_cast<uint32_t>(reply_bulk.size());
      st = env.RpcCall(send, nullptr, 0, reply_inline.data(),
                       static_cast<uint32_t>(reply_inline.size()), &reply_len, &ref);
      ASSERT_EQ(st, base::Status::kOk);
      ASSERT_EQ(ref.recv_len, size);
      ASSERT_TRUE(std::equal(payload.begin(), payload.end(), reply_bulk.begin()));
    }
    ok = true;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RpcPayloadTest,
                         ::testing::Values(0u, 1u, 31u, 32u, 255u, 257u, 4096u, 65536u));

// --- Legacy IPC payload sweep ---------------------------------------------------

class MachMsgPayloadTest : public KernelTest, public ::testing::WithParamInterface<uint32_t> {};

TEST_P(MachMsgPayloadTest, InlineDataSurvivesQueueing) {
  const uint32_t size = GetParam();
  Task* a = kernel_.CreateTask("a");
  Task* b = kernel_.CreateTask("b");
  auto recv = kernel_.PortAllocate(*b);
  auto send = kernel_.MakeSendRight(*b, *recv, *a);
  std::vector<uint8_t> sent(size);
  base::Rng rng(size * 13 + 1);
  for (auto& byte : sent) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  kernel_.CreateThread(a, "sender", [&, send = *send](mk::Env& env) {
    MachMessage msg;
    msg.msg_id = size;
    msg.dest = send;
    msg.inline_data = sent;
    ASSERT_EQ(env.kernel().MachMsgSend(std::move(msg)), base::Status::kOk);
  });
  std::vector<uint8_t> got;
  kernel_.CreateThread(b, "receiver", [&, recv = *recv](mk::Env& env) {
    MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(recv, &msg), base::Status::kOk);
    EXPECT_EQ(msg.msg_id, size);
    got = msg.inline_data;
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MachMsgPayloadTest,
                         ::testing::Values(0u, 1u, 64u, 1024u, 16384u));

// --- VM fault sweep: touch patterns always resolve to consistent frames ---------

class VmTouchTest : public KernelTest,
                    public ::testing::WithParamInterface<std::pair<uint32_t, uint32_t>> {};

TEST_P(VmTouchTest, RandomReadWritePatternIsCoherent) {
  const auto [pages, seed] = GetParam();
  Task* task = kernel_.CreateTask("t");
  auto base_addr = kernel_.VmAllocate(*task, pages * hw::kPageSize);
  ASSERT_TRUE(base_addr.ok());
  kernel_.CreateThread(task, "w", [&, addr = *base_addr](mk::Env& env) {
    base::Rng rng(seed);
    std::map<uint64_t, uint32_t> oracle;  // word address -> value
    for (int i = 0; i < 200; ++i) {
      const uint64_t offset = (rng.NextBelow(pages * hw::kPageSize / 4)) * 4;
      if (rng.NextBool(0.5)) {
        const uint32_t v = static_cast<uint32_t>(rng.Next());
        ASSERT_EQ(env.CopyOut(addr + offset, &v, 4), base::Status::kOk);
        oracle[offset] = v;
      } else {
        uint32_t v = 1;
        ASSERT_EQ(env.CopyIn(addr + offset, &v, 4), base::Status::kOk);
        const uint32_t expected = oracle.contains(offset) ? oracle[offset] : 0;
        ASSERT_EQ(v, expected) << "offset " << offset;
      }
    }
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_LE(task->zero_fills, pages);
}

INSTANTIATE_TEST_SUITE_P(Patterns, VmTouchTest,
                         ::testing::Values(std::make_pair(1u, 7u), std::make_pair(4u, 11u),
                                           std::make_pair(16u, 13u),
                                           std::make_pair(64u, 17u)));

}  // namespace
}  // namespace mk

// --- Cache geometry sweep (pure hw, no kernel) --------------------------------------

namespace hw {
namespace {

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(CacheGeometryTest, LruNeverEvictsWithinWaySetCapacity) {
  const auto [size, line, ways] = GetParam();
  Cache cache(CacheConfig{size, line, ways});
  // Touch exactly `ways` distinct lines in one set, then re-touch: all hits.
  const uint32_t sets = size / (line * ways);
  for (uint32_t w = 0; w < ways; ++w) {
    cache.Access(static_cast<PhysAddr>(w) * sets * line, false);
  }
  for (uint32_t w = 0; w < ways; ++w) {
    EXPECT_TRUE(cache.Access(static_cast<PhysAddr>(w) * sets * line, false).hit)
        << "way " << w;
  }
  // One more conflicting line evicts exactly the LRU (way 0).
  cache.Access(static_cast<PhysAddr>(ways) * sets * line, false);
  EXPECT_FALSE(cache.Access(0, false).hit);
}

TEST_P(CacheGeometryTest, SequentialSweepMissesOncePerLine) {
  const auto [size, line, ways] = GetParam();
  Cache cache(CacheConfig{size, line, ways});
  for (PhysAddr a = 0; a < size; a += line) {
    EXPECT_FALSE(cache.Access(a, false).hit);
  }
  EXPECT_EQ(cache.stats().misses, size / line);
  for (PhysAddr a = 0; a < size; a += line) {
    EXPECT_TRUE(cache.Access(a, false).hit);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometryTest,
                         ::testing::Values(std::make_tuple(8192u, 32u, 2u),
                                           std::make_tuple(8192u, 32u, 1u),
                                           std::make_tuple(16384u, 32u, 4u),
                                           std::make_tuple(4096u, 16u, 2u),
                                           std::make_tuple(32768u, 64u, 8u)));

}  // namespace
}  // namespace hw
