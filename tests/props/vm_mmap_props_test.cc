// Property-based VM/mmap harness: seeded random sequences of POSIX-level
// operations — write/read/lseek through a file descriptor, mmap/munmap,
// mapped loads and stores, msync, fork — run against a UnixProcess with a
// live file server, checked after every step against an in-memory reference
// model of the POSIX contract this system implements:
//
//   - a clean mapped page always shows the CURRENT file bytes (server-side
//     invalidation keeps mapped views coherent with writes), zeros past EOF;
//   - a dirty mapped page shows the mapped stores, immune to fd writes,
//     until msync replays the whole page (clipped to the file size) into the
//     file and cleans it;
//   - munmap without msync discards dirty pages;
//   - fork hands the shared mapping to the child, who observes the same
//     object — including not-yet-synced dirty pages.
//
// Any divergence reports the seed and the full op trace, which replays the
// failure deterministically (the whole system is a deterministic simulation).
//
// The seed sweep: WPOS_PROPS_SEED selects a single seed for CI soaks;
// without it, a fixed batch of seeds runs. The cache dimension is a test
// parameter — the contract must hold with the client FS cache on and off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/pers/unixp/unix.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace pers {
namespace {

constexpr uint64_t kMaxFileBytes = 3 * hw::kPageSize + 500;
constexpr int kOpsPerSeed = 160;

// The reference model: what a correct implementation must show through every
// observation channel.
struct Model {
  std::vector<uint8_t> file;  // authoritative byte content, as read() sees it
  uint64_t fd_offset = 0;
  bool mapped = false;
  uint64_t map_len = 0;  // page-rounded view length, fixed at mmap time
  // Dirty page overrides: page index -> full page of expected mapped bytes.
  std::map<uint64_t, std::vector<uint8_t>> dirty;

  uint8_t MappedByte(uint64_t i) const {
    const uint64_t page = i >> hw::kPageShift;
    auto it = dirty.find(page);
    if (it != dirty.end()) {
      return it->second[i & hw::kPageMask];
    }
    return i < file.size() ? file[i] : 0;
  }

  // A store materializes the page's expected bytes from the current file
  // (a clean page is always current) before applying the override.
  void Store(uint64_t off, uint8_t byte) {
    const uint64_t page = off >> hw::kPageShift;
    auto it = dirty.find(page);
    if (it == dirty.end()) {
      std::vector<uint8_t> bytes(hw::kPageSize, 0);
      const uint64_t base = page << hw::kPageShift;
      for (uint64_t j = 0; j < hw::kPageSize; ++j) {
        bytes[j] = base + j < file.size() ? file[base + j] : 0;
      }
      it = dirty.emplace(page, std::move(bytes)).first;
    }
    it->second[off & hw::kPageMask] = byte;
  }

  // msync: every dirty page replays wholesale into the file, clipped to the
  // current size (mmap never extends a file), then the page is clean.
  void Msync() {
    for (const auto& [page, bytes] : dirty) {
      const uint64_t base = page << hw::kPageShift;
      for (uint64_t j = 0; j < hw::kPageSize; ++j) {
        if (base + j < file.size()) {
          file[base + j] = bytes[j];
        }
      }
    }
    dirty.clear();
  }

  void Write(uint64_t off, const std::vector<uint8_t>& data) {
    if (off + data.size() > file.size()) {
      file.resize(off + data.size(), 0);
    }
    std::memcpy(file.data() + off, data.data(), data.size());
  }
};

class VmMmapPropsTest : public mk::KernelTest,
                        public ::testing::WithParamInterface<bool> {
 protected:
  VmMmapPropsTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<svc::BlockCache>(kernel_, store_.get(), 1024);
    jfs_ = std::make_unique<svc::JfsFs>(kernel_, cache_.get(), 65536);
    fs_task_ = kernel_.CreateTask("file-server");
    fs_ = std::make_unique<svc::FileServer>(kernel_, fs_task_);
    fs_->EnableMapping();
    EXPECT_EQ(fs_->AddMount("/", jfs_.get()), base::Status::kOk);
    kernel_.CreateThread(fs_task_, "mkfs",
                         [this](mk::Env& env) { ASSERT_EQ(jfs_->Format(env), base::Status::kOk); });
  }

  void StopFs(mk::Env& env, mk::Task& any_client_task) {
    fs_->Stop();
    svc::FsClient unblock(fs_->GrantTo(any_client_task));
    (void)unblock.Sync(env);
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::JfsFs> jfs_;
  mk::Task* fs_task_;
  std::unique_ptr<svc::FileServer> fs_;
};

std::vector<uint64_t> SeedsUnderTest() {
  const char* env = std::getenv("WPOS_PROPS_SEED");
  if (env != nullptr && *env != '\0') {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 7, 1337};
}

// One randomized campaign against one file. Returns via gtest assertions;
// every assertion carries the seed and the op trace for replay.
void RunCampaign(mk::Env& env, mk::Kernel& kernel, UnixPersonality& pers, UnixProcess* proc,
                 uint64_t seed, const std::string& path) {
  base::Rng rng(seed);
  Model model;
  std::ostringstream trace;
  hw::VirtAddr map_addr = 0;

  auto fd = proc->Open(env, path, kOCreat | kORdWr);
  ASSERT_TRUE(fd.ok()) << "seed=" << seed;

  for (int op = 0; op < kOpsPerSeed; ++op) {
    // Weighted op pick. Mapped ops only apply while a mapping is live.
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 22) {
      // -- write at the fd offset (bounded so the file stays mappable) -----
      if (model.fd_offset >= kMaxFileBytes) {
        trace << op << ": skip-write (offset at cap)\n";
        continue;
      }
      const uint32_t len = static_cast<uint32_t>(
          rng.NextInRange(1, std::min<uint64_t>(256, kMaxFileBytes - model.fd_offset)));
      std::vector<uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      trace << op << ": write off=" << model.fd_offset << " len=" << len << "\n";
      auto wrote = proc->Write(env, *fd, data.data(), len);
      ASSERT_TRUE(wrote.ok()) << "seed=" << seed << "\n" << trace.str();
      ASSERT_EQ(*wrote, len) << "seed=" << seed << "\n" << trace.str();
      model.Write(model.fd_offset, data);
      model.fd_offset += len;
    } else if (roll < 44) {
      // -- read at the fd offset, differential against the model ----------
      const uint32_t want = static_cast<uint32_t>(rng.NextInRange(1, 300));
      trace << op << ": read off=" << model.fd_offset << " len=" << want << "\n";
      std::vector<uint8_t> got(want, 0xAB);
      auto n = proc->Read(env, *fd, got.data(), want);
      ASSERT_TRUE(n.ok()) << "seed=" << seed << "\n" << trace.str();
      const uint64_t start = std::min<uint64_t>(model.fd_offset, model.file.size());
      const uint64_t expect_n = std::min<uint64_t>(want, model.file.size() - start);
      ASSERT_EQ(*n, expect_n) << "seed=" << seed << "\n" << trace.str();
      for (uint64_t j = 0; j < expect_n; ++j) {
        ASSERT_EQ(got[j], model.file[start + j])
            << "read diverges at file offset " << start + j << " seed=" << seed << "\n"
            << trace.str();
      }
      model.fd_offset += expect_n;
    } else if (roll < 52) {
      // -- lseek (SEEK_SET) ------------------------------------------------
      const uint64_t to = rng.NextBelow(kMaxFileBytes);
      trace << op << ": lseek " << to << "\n";
      auto pos = proc->Lseek(env, *fd, static_cast<int64_t>(to), 0);
      ASSERT_TRUE(pos.ok()) << "seed=" << seed << "\n" << trace.str();
      ASSERT_EQ(*pos, to) << "seed=" << seed << "\n" << trace.str();
      model.fd_offset = to;
    } else if (roll < 58) {
      // -- mmap (shared) ---------------------------------------------------
      if (model.mapped || model.file.empty()) {
        trace << op << ": skip-mmap\n";
        continue;
      }
      trace << op << ": mmap len=" << model.file.size() << "\n";
      auto addr = proc->Mmap(env, *fd, model.file.size(), /*shared=*/true);
      ASSERT_TRUE(addr.ok()) << "seed=" << seed << "\n" << trace.str();
      map_addr = *addr;
      model.mapped = true;
      model.map_len = hw::PageRound(model.file.size());
    } else if (roll < 62) {
      // -- munmap: dirty never-synced pages are discarded -------------------
      if (!model.mapped) {
        trace << op << ": skip-munmap\n";
        continue;
      }
      trace << op << ": munmap\n";
      ASSERT_EQ(proc->Munmap(env, map_addr), base::Status::kOk)
          << "seed=" << seed << "\n" << trace.str();
      model.mapped = false;
      model.map_len = 0;
      model.dirty.clear();
    } else if (roll < 70) {
      // -- msync: publish dirty pages to the file ---------------------------
      if (!model.mapped) {
        trace << op << ": skip-msync\n";
        continue;
      }
      trace << op << ": msync\n";
      ASSERT_EQ(proc->Msync(env, map_addr, model.map_len), base::Status::kOk)
          << "seed=" << seed << "\n" << trace.str();
      model.Msync();
    } else if (roll < 85) {
      // -- mapped load, differential against the model ----------------------
      if (!model.mapped) {
        trace << op << ": skip-mload\n";
        continue;
      }
      const uint64_t off = rng.NextBelow(model.map_len);
      const uint64_t len = rng.NextInRange(1, std::min<uint64_t>(64, model.map_len - off));
      trace << op << ": mload off=" << off << " len=" << len << "\n";
      std::vector<uint8_t> got(len, 0xCD);
      ASSERT_EQ(kernel.CopyIn(*proc->task(), map_addr + off, got.data(), len),
                base::Status::kOk)
          << "seed=" << seed << "\n" << trace.str();
      for (uint64_t j = 0; j < len; ++j) {
        ASSERT_EQ(got[j], model.MappedByte(off + j))
            << "mapped load diverges at mapping offset " << off + j << " seed=" << seed << "\n"
            << trace.str();
      }
    } else if (roll < 97) {
      // -- mapped store (kept inside the file so msync clipping stays out
      //    of the observable-divergence business) --------------------------
      if (!model.mapped || model.file.empty()) {
        trace << op << ": skip-mstore\n";
        continue;
      }
      const uint64_t bound = std::min<uint64_t>(model.map_len, model.file.size());
      const uint64_t off = rng.NextBelow(bound);
      const uint64_t len = rng.NextInRange(1, std::min<uint64_t>(16, bound - off));
      std::vector<uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      trace << op << ": mstore off=" << off << " len=" << len << "\n";
      ASSERT_EQ(kernel.CopyOut(*proc->task(), map_addr + off, data.data(), len),
                base::Status::kOk)
          << "seed=" << seed << "\n" << trace.str();
      for (uint64_t j = 0; j < len; ++j) {
        model.Store(off + j, data[j]);
      }
    } else {
      // -- fork: the child must observe the parent's mapped view, dirty
      //    pages included (same memory object) ------------------------------
      trace << op << ": fork\n";
      const Model snapshot = model;
      const hw::VirtAddr snap_addr = map_addr;
      bool child_ok = true;
      std::string child_err;
      auto child = proc->Fork(env, [&, snapshot, snap_addr](mk::Env& cenv) {
        if (!snapshot.mapped) {
          return;
        }
        std::vector<uint8_t> got(snapshot.map_len, 0);
        if (cenv.CopyIn(snap_addr, got.data(), got.size()) != base::Status::kOk) {
          child_ok = false;
          child_err = "child CopyIn failed";
          return;
        }
        for (uint64_t j = 0; j < snapshot.map_len; ++j) {
          if (got[j] != snapshot.MappedByte(j)) {
            child_ok = false;
            child_err = "child mapped view diverges at offset " + std::to_string(j);
            return;
          }
        }
      });
      ASSERT_TRUE(child.ok()) << "seed=" << seed << "\n" << trace.str();
      (*child)->Exit(env, 0);
      ASSERT_TRUE(proc->WaitPid(env, *child).ok()) << "seed=" << seed << "\n" << trace.str();
      ASSERT_TRUE(child_ok) << child_err << " seed=" << seed << "\n" << trace.str();
    }
  }

  // Campaign epilogue: msync and compare the whole file both ways.
  if (model.mapped) {
    ASSERT_EQ(proc->Msync(env, map_addr, model.map_len), base::Status::kOk) << "seed=" << seed;
    model.Msync();
    std::vector<uint8_t> via_map(model.map_len, 0);
    ASSERT_EQ(kernel.CopyIn(*proc->task(), map_addr, via_map.data(), via_map.size()),
              base::Status::kOk)
        << "seed=" << seed;
    for (uint64_t j = 0; j < model.map_len; ++j) {
      ASSERT_EQ(via_map[j], model.MappedByte(j))
          << "final mapped sweep diverges at " << j << " seed=" << seed << "\n" << trace.str();
    }
    ASSERT_EQ(proc->Munmap(env, map_addr), base::Status::kOk) << "seed=" << seed;
  }
  if (!model.file.empty()) {
    ASSERT_TRUE(proc->Lseek(env, *fd, 0, 0).ok()) << "seed=" << seed;
    std::vector<uint8_t> whole(model.file.size(), 0);
    auto n = proc->Read(env, *fd, whole.data(), static_cast<uint32_t>(whole.size()));
    ASSERT_TRUE(n.ok()) << "seed=" << seed;
    ASSERT_EQ(*n, model.file.size()) << "seed=" << seed;
    EXPECT_EQ(whole, model.file) << "final file sweep diverges, seed=" << seed << "\n"
                                 << trace.str();
  }
  ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk) << "seed=" << seed;
}

TEST_P(VmMmapPropsTest, RandomOpSequencesMatchTheReferenceModel) {
  UnixPersonality unix_pers(kernel_, *fs_);
  if (GetParam()) {
    unix_pers.EnableFsCache();
  }
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("prop", [&](mk::Env& env) {
    for (uint64_t seed : SeedsUnderTest()) {
      RunCampaign(env, kernel_, unix_pers, proc, seed,
                  "/prop-" + std::to_string(seed) + ".dat");
      if (::testing::Test::HasFatalFailure()) {
        break;
      }
    }
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

INSTANTIATE_TEST_SUITE_P(CacheOffAndOn, VmMmapPropsTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FsCacheOn" : "FsCacheOff";
                         });

}  // namespace
}  // namespace pers
