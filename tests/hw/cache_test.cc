#include "src/hw/cache.h"

#include <gtest/gtest.h>

namespace hw {
namespace {

CacheConfig SmallCache() {
  return CacheConfig{.size_bytes = 1024, .line_bytes = 32, .ways = 2};
}

TEST(CacheTest, FirstAccessMissesThenHits) {
  Cache cache(SmallCache());
  EXPECT_FALSE(cache.Access(0x100, false).hit);
  EXPECT_TRUE(cache.Access(0x100, false).hit);
  EXPECT_TRUE(cache.Access(0x11f, false).hit);   // same 32-byte line
  EXPECT_FALSE(cache.Access(0x120, false).hit);  // next line
}

TEST(CacheTest, StatsCountAccessesAndMisses) {
  Cache cache(SmallCache());
  cache.Access(0x0, false);
  cache.Access(0x0, false);
  cache.Access(0x40, false);
  EXPECT_EQ(cache.stats().accesses, 3u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTest, ConflictEvictionLru) {
  Cache cache(SmallCache());  // 16 sets, 2 ways
  // Three lines mapping to the same set (stride = sets * line = 512).
  cache.Access(0x000, false);
  cache.Access(0x200, false);
  EXPECT_TRUE(cache.Access(0x000, false).hit);
  cache.Access(0x400, false);  // evicts 0x200 (LRU)
  EXPECT_TRUE(cache.Access(0x000, false).hit);
  EXPECT_FALSE(cache.Access(0x200, false).hit);
}

TEST(CacheTest, DirtyEvictionReportsWriteback) {
  Cache cache(SmallCache());
  cache.Access(0x000, true);  // dirty
  cache.Access(0x200, false);
  auto r = cache.Access(0x400, false);  // evicts dirty 0x000
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, FlushInvalidatesAndWritesBackDirty) {
  Cache cache(SmallCache());
  cache.Access(0x000, true);
  cache.Access(0x040, false);
  cache.Flush();
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_FALSE(cache.Access(0x000, false).hit);
  EXPECT_FALSE(cache.Access(0x040, false).hit);
}

TEST(CacheTest, CapacityHoldsWorkingSet) {
  Cache cache(SmallCache());  // 1 KB: 32 lines
  for (uint64_t a = 0; a < 1024; a += 32) {
    cache.Access(a, false);
  }
  // Everything fits; second pass hits entirely.
  for (uint64_t a = 0; a < 1024; a += 32) {
    EXPECT_TRUE(cache.Access(a, false).hit) << a;
  }
}

TEST(CacheTest, OverCapacityWorkingSetThrashes) {
  Cache cache(SmallCache());
  // 2x capacity round robin: with LRU this misses every time.
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t a = 0; a < 2048; a += 32) {
      cache.Access(a, false);
    }
  }
  EXPECT_EQ(cache.stats().misses, cache.stats().accesses);
}

}  // namespace
}  // namespace hw
