#include "src/hw/phys_mem.h"

#include <gtest/gtest.h>

namespace hw {
namespace {

TEST(PhysMemTest, AllocAndFreeFrames) {
  PhysMem mem(64 * 1024);
  EXPECT_EQ(mem.num_frames(), 16u);
  auto f1 = mem.AllocFrame();
  auto f2 = mem.AllocFrame();
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_NE(*f1, *f2);
  EXPECT_EQ(mem.frames_allocated(), 2u);
  mem.FreeFrame(*f1);
  EXPECT_EQ(mem.frames_allocated(), 1u);
  EXPECT_FALSE(mem.IsAllocated(*f1));
  EXPECT_TRUE(mem.IsAllocated(*f2));
}

TEST(PhysMemTest, ExhaustionReturnsShortage) {
  PhysMem mem(4 * 4096);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(mem.AllocFrame().ok());
  }
  EXPECT_EQ(mem.AllocFrame().status(), base::Status::kResourceShortage);
}

TEST(PhysMemTest, ContiguousAllocationIsContiguous) {
  PhysMem mem(16 * 4096);
  ASSERT_TRUE(mem.AllocFrame().ok());
  auto run = mem.AllocContiguous(4);
  ASSERT_TRUE(run.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(mem.IsAllocated(*run + static_cast<uint64_t>(i) * 4096));
  }
}

TEST(PhysMemTest, ContiguousSkipsFragmentedGaps) {
  PhysMem mem(8 * 4096);
  auto a = mem.AllocFrame();  // frame 0
  auto b = mem.AllocFrame();  // frame 1
  mem.FreeFrame(*a);          // gap of 1 at the front
  auto run = mem.AllocContiguous(3);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(*run, *b);  // could not fit in the single-frame gap
}

TEST(PhysMemTest, ReadWriteRoundTrip) {
  PhysMem mem(64 * 1024);
  const char msg[] = "workplace os";
  mem.Write(0x1234, msg, sizeof(msg));
  char out[sizeof(msg)] = {};
  mem.Read(0x1234, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
  mem.WriteU32(0x2000, 0xdeadbeef);
  EXPECT_EQ(mem.ReadU32(0x2000), 0xdeadbeefu);
  mem.Fill(0x2000, 0, 4);
  EXPECT_EQ(mem.ReadU32(0x2000), 0u);
}

}  // namespace
}  // namespace hw
