#include <gtest/gtest.h>

#include "src/hw/disk.h"
#include "src/hw/dma.h"
#include "src/hw/framebuffer.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/hw/timer_device.h"

namespace hw {
namespace {

class DevicesTest : public ::testing::Test {
 protected:
  Machine machine_{MachineConfig{.ram_bytes = 4 * 1024 * 1024}};
};

TEST_F(DevicesTest, EventQueueOrdersByTimeThenSequence) {
  std::vector<int> order;
  machine_.ScheduleAt(100, [&] { order.push_back(1); });
  machine_.ScheduleAt(50, [&] { order.push_back(0); });
  machine_.ScheduleAt(100, [&] { order.push_back(2); });
  machine_.cpu().AdvanceCycles(100);
  machine_.PollEvents();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(DevicesTest, IdleAdvanceSkipsToNextEvent) {
  bool fired = false;
  machine_.ScheduleAt(5000, [&] { fired = true; });
  EXPECT_TRUE(machine_.IdleAdvance());
  EXPECT_TRUE(fired);
  EXPECT_GE(machine_.cpu().cycles(), 5000u);
  EXPECT_FALSE(machine_.IdleAdvance());
}

TEST_F(DevicesTest, DiskDmaReadWriteWithInterrupt) {
  auto* disk = static_cast<Disk*>(machine_.AddDevice(std::make_unique<Disk>("disk0", 3)));
  // Prepare platter content via the backdoor.
  std::vector<uint8_t> sector(Disk::kSectorSize, 0xab);
  disk->WriteSectors(7, 1, sector.data());

  // Program a DMA read of sector 7 into physical 0x10000.
  disk->WriteReg(Disk::kRegLba, 7);
  disk->WriteReg(Disk::kRegCount, 1);
  disk->WriteReg(Disk::kRegDmaLo, 0x10000);
  disk->WriteReg(Disk::kRegCommand, Disk::kCmdRead);
  EXPECT_TRUE(disk->ReadReg(Disk::kRegStatus) & Disk::kStatusBusy);
  while (machine_.IdleAdvance()) {
  }
  EXPECT_TRUE(disk->ReadReg(Disk::kRegStatus) & Disk::kStatusDone);
  EXPECT_TRUE(machine_.pic().IsPending(3));
  EXPECT_EQ(machine_.mem().ReadU8(0x10000), 0xab);

  machine_.pic().Ack(3);
  disk->WriteReg(Disk::kRegStatus, 0);  // ack at device

  // Write path: memory -> platter.
  machine_.mem().Fill(0x20000, 0x5c, Disk::kSectorSize);
  disk->WriteReg(Disk::kRegLba, 9);
  disk->WriteReg(Disk::kRegCount, 1);
  disk->WriteReg(Disk::kRegDmaLo, 0x20000);
  disk->WriteReg(Disk::kRegCommand, Disk::kCmdWrite);
  while (machine_.IdleAdvance()) {
  }
  uint8_t out[Disk::kSectorSize];
  disk->ReadSectors(9, 1, out);
  EXPECT_EQ(out[0], 0x5c);
  EXPECT_EQ(out[Disk::kSectorSize - 1], 0x5c);
}

TEST_F(DevicesTest, DiskOutOfRangeSetsError) {
  auto* disk = static_cast<Disk*>(machine_.AddDevice(std::make_unique<Disk>("disk0", 3)));
  disk->WriteReg(Disk::kRegLba, 0xffffffff);
  disk->WriteReg(Disk::kRegCount, 1);
  disk->WriteReg(Disk::kRegCommand, Disk::kCmdRead);
  EXPECT_TRUE(disk->ReadReg(Disk::kRegStatus) & Disk::kStatusError);
}

TEST_F(DevicesTest, NicLoopsBackFrames) {
  auto* nic = static_cast<Nic*>(machine_.AddDevice(std::make_unique<Nic>("nic0", 5)));
  machine_.mem().Fill(0x30000, 0x11, 64);
  nic->WriteReg(Nic::kRegRxAddr, 0x40000);
  nic->WriteReg(Nic::kRegRxCap, 2048);
  nic->WriteReg(Nic::kRegTxAddr, 0x30000);
  nic->WriteReg(Nic::kRegTxLen, 64);
  nic->WriteReg(Nic::kRegCommand, Nic::kCmdSend);
  while (machine_.IdleAdvance()) {
  }
  EXPECT_TRUE(nic->ReadReg(Nic::kRegStatus) & Nic::kStatusRxReady);
  EXPECT_EQ(nic->ReadReg(Nic::kRegRxLen), 64u);
  EXPECT_EQ(machine_.mem().ReadU8(0x40000), 0x11);
  EXPECT_TRUE(machine_.pic().IsPending(5));
  EXPECT_EQ(nic->frames_delivered(), 1u);
}

TEST_F(DevicesTest, NicQueuesWhenRxBusy) {
  auto* nic = static_cast<Nic*>(machine_.AddDevice(std::make_unique<Nic>("nic0", 5)));
  nic->WriteReg(Nic::kRegRxAddr, 0x40000);
  nic->WriteReg(Nic::kRegRxCap, 2048);
  machine_.mem().WriteU8(0x30000, 1);
  machine_.mem().WriteU8(0x31000, 2);
  nic->WriteReg(Nic::kRegTxAddr, 0x30000);
  nic->WriteReg(Nic::kRegTxLen, 32);
  nic->WriteReg(Nic::kRegCommand, Nic::kCmdSend);
  nic->WriteReg(Nic::kRegTxAddr, 0x31000);
  nic->WriteReg(Nic::kRegTxLen, 32);
  nic->WriteReg(Nic::kRegCommand, Nic::kCmdSend);
  while (machine_.IdleAdvance()) {
  }
  // Only the first frame delivered; second waits for the ack.
  EXPECT_EQ(machine_.mem().ReadU8(0x40000), 1);
  nic->WriteReg(Nic::kRegCommand, Nic::kCmdRxAck);
  EXPECT_EQ(machine_.mem().ReadU8(0x40000), 2);
  EXPECT_EQ(nic->frames_delivered(), 2u);
}

TEST_F(DevicesTest, TimerTicksPeriodically) {
  auto* timer = static_cast<TimerDevice*>(
      machine_.AddDevice(std::make_unique<TimerDevice>("timer0", 0)));
  timer->WriteReg(TimerDevice::kRegPeriod, 1000);
  timer->WriteReg(TimerDevice::kRegControl, TimerDevice::kCtlStart);
  for (int i = 0; i < 5; ++i) {
    machine_.IdleAdvance();
  }
  EXPECT_EQ(timer->ticks(), 5u);
  EXPECT_TRUE(machine_.pic().IsPending(0));
  timer->WriteReg(TimerDevice::kRegControl, TimerDevice::kCtlStop);
  const uint64_t ticks_at_stop = timer->ticks();
  while (machine_.IdleAdvance()) {
  }
  EXPECT_EQ(timer->ticks(), ticks_at_stop);  // stale events are inert
}

TEST_F(DevicesTest, DmaTransfersAndRaisesIrq) {
  auto* dma = static_cast<DmaEngine*>(machine_.AddDevice(std::make_unique<DmaEngine>("dma0", 6)));
  machine_.mem().Fill(0x50000, 0x77, 256);
  dma->WriteReg(DmaEngine::kRegSrc, 0x50000);
  dma->WriteReg(DmaEngine::kRegDst, 0x60000);
  dma->WriteReg(DmaEngine::kRegLen, 256);
  dma->WriteReg(DmaEngine::kRegControl, 1);
  while (machine_.IdleAdvance()) {
  }
  EXPECT_EQ(machine_.mem().ReadU8(0x60000), 0x77);
  EXPECT_EQ(machine_.mem().ReadU8(0x600ff), 0x77);
  EXPECT_TRUE(dma->ReadReg(DmaEngine::kRegStatus) & DmaEngine::kStatusDone);
  EXPECT_TRUE(machine_.pic().IsPending(6));
}

TEST_F(DevicesTest, FramebufferAllocatesVramAperture) {
  Framebuffer* fb = nullptr;
  {
    auto dev = std::make_unique<Framebuffer>("fb0", &machine_, 640, 480);
    fb = dev.get();
    machine_.AddDevice(std::move(dev));
  }
  EXPECT_EQ(fb->vram_size(), 640u * 480u);
  EXPECT_TRUE(machine_.mem().IsAllocated(fb->vram_base()));
  EXPECT_EQ(fb->ReadReg(Framebuffer::kRegWidth), 640u);
  EXPECT_EQ(fb->ReadReg(Framebuffer::kRegVramLo), static_cast<uint32_t>(fb->vram_base()));
}

TEST_F(DevicesTest, DeviceRegisterRouting) {
  auto* disk = machine_.AddDevice(std::make_unique<Disk>("disk0", 3));
  auto* nic = machine_.AddDevice(std::make_unique<Nic>("nic0", 5));
  EXPECT_NE(disk->reg_base(), nic->reg_base());
  machine_.DeviceWrite(disk->reg_base() + Disk::kRegLba, 42);
  EXPECT_EQ(machine_.DeviceRead(disk->reg_base() + Disk::kRegLba), 42u);
  EXPECT_EQ(machine_.FindDevice("nic0"), nic);
  EXPECT_EQ(machine_.FindDevice("none"), nullptr);
}

TEST_F(DevicesTest, InterruptControllerEnableMasking) {
  InterruptController pic;
  pic.Raise(4);
  EXPECT_TRUE(pic.IsPending(4));
  pic.Enable(4, false);
  EXPECT_FALSE(pic.IsPending(4));
  EXPECT_EQ(pic.NextPending(), -1);
  pic.Enable(4, true);
  EXPECT_EQ(pic.NextPending(), 4);
  pic.Ack(4);
  EXPECT_FALSE(pic.AnyPending());
  EXPECT_EQ(pic.raise_count(4), 1u);
}

}  // namespace
}  // namespace hw
