#include "src/hw/cpu.h"

#include <gtest/gtest.h>

#include "src/hw/code_layout.h"

namespace hw {
namespace {

TEST(CodeLayoutTest, RegionsAreStableAndDisjoint) {
  CodeRegion a = CodeLayout::Global().Register("testcomp.alpha", 100);
  CodeRegion b = CodeLayout::Global().Register("testcomp.beta", 50);
  CodeRegion a2 = CodeLayout::Global().Register("testcomp.alpha", 100);
  EXPECT_EQ(a.base, a2.base);
  EXPECT_NE(a.base, b.base);
  // No overlap.
  EXPECT_TRUE(a.base + a.size_bytes() <= b.base || b.base + b.size_bytes() <= a.base);
}

TEST(CodeLayoutTest, ComponentsGetSeparateImages) {
  CodeRegion a = CodeLayout::Global().Register("imgone.f", 10);
  CodeRegion b = CodeLayout::Global().Register("imgtwo.f", 10);
  EXPECT_GE(b.base > a.base ? b.base - a.base : a.base - b.base, 64u * 1024);
}

TEST(CpuTest, ExecuteCountsInstructionsAndCycles) {
  Cpu cpu;
  CodeRegion r = CodeLayout::Global().Register("cputest.basic", 1000);
  cpu.Execute(r);
  auto c = cpu.counters();
  EXPECT_EQ(c.instructions, 1000u);
  EXPECT_GT(c.cycles, 1000u);  // base CPI > 1 plus cold I-cache misses
  EXPECT_GT(c.icache_misses, 0u);
}

TEST(CpuTest, WarmCodeRunsNearBaseCpi) {
  Cpu cpu;
  CodeRegion r = CodeLayout::Global().Register("cputest.warm", 200);
  cpu.Execute(r);  // warm up
  auto before = cpu.counters();
  for (int i = 0; i < 100; ++i) {
    cpu.Execute(r);
  }
  auto delta = cpu.counters() - before;
  EXPECT_EQ(delta.icache_misses, 0u);
  EXPECT_NEAR(delta.cpi(), cpu.config().base_cpi, 0.01);
}

TEST(CpuTest, DataAccessChargesMissesPerLine) {
  Cpu cpu;
  auto before = cpu.counters();
  cpu.AccessData(0x1000, 64, false);  // two 32-byte lines
  auto delta = cpu.counters() - before;
  EXPECT_EQ(delta.dcache_misses, 2u);
  EXPECT_EQ(delta.bus_cycles, 2u * cpu.config().bus_per_fill);
  before = cpu.counters();
  cpu.AccessData(0x1000, 64, false);
  delta = cpu.counters() - before;
  EXPECT_EQ(delta.dcache_misses, 0u);
}

TEST(CpuTest, TranslatedAccessChargesTlbWalkOnce) {
  Cpu cpu;
  auto before = cpu.counters();
  cpu.AccessTranslated(0x40001000, 0x9000, 0x200000, 4, false);
  auto delta = cpu.counters() - before;
  EXPECT_EQ(delta.tlb_misses, 1u);
  before = cpu.counters();
  cpu.AccessTranslated(0x40001004, 0x9004, 0x200000, 4, false);
  delta = cpu.counters() - before;
  EXPECT_EQ(delta.tlb_misses, 0u);
}

TEST(CpuTest, TlbFlushForcesRefill) {
  Cpu cpu;
  cpu.AccessTranslated(0x40001000, 0x9000, 0x200000, 4, false);
  cpu.FlushTlb();
  auto before = cpu.counters();
  cpu.AccessTranslated(0x40001000, 0x9000, 0x200000, 4, false);
  EXPECT_EQ((cpu.counters() - before).tlb_misses, 1u);
}

TEST(CpuTest, UncachedAccessCosts) {
  Cpu cpu;
  auto before = cpu.counters();
  cpu.AccessUncached(0x200000000ull, 4, true);
  auto delta = cpu.counters() - before;
  EXPECT_EQ(delta.uncached_accesses, 1u);
  EXPECT_EQ(delta.cycles, cpu.config().uncached_cycles);
  EXPECT_EQ(delta.bus_cycles, cpu.config().bus_per_uncached);
}

TEST(CpuTest, CyclesNsConversionRoundTrips) {
  Cpu cpu;  // 133 MHz
  EXPECT_EQ(cpu.CyclesToNs(133), 1000u);
  EXPECT_EQ(cpu.NsToCycles(1000), 133u);
}

TEST(CpuTest, PartialExecutionRefetchesOnlyRegionLines) {
  Cpu cpu;
  CodeRegion r = CodeLayout::Global().Register("cputest.copyloop", 16);
  cpu.Execute(r);
  auto before = cpu.counters();
  // Simulate a copy loop: 10000 instructions through a 16-instruction body.
  cpu.ExecuteInstructions(r, 10000);
  auto delta = cpu.counters() - before;
  EXPECT_EQ(delta.instructions, 10000u);
  EXPECT_EQ(delta.icache_misses, 0u);  // body stays resident
}

}  // namespace
}  // namespace hw
