#include "src/mks/naming/name_server.h"

#include <gtest/gtest.h>

#include "src/mks/naming/lite_name_server.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mks {
namespace {

class NamingTest : public mk::KernelTest {
 protected:
  NamingTest() {
    ns_task_ = kernel_.CreateTask("mks-naming");
    server_ = std::make_unique<NameServer>(kernel_, ns_task_);
    client_task_ = kernel_.CreateTask("client");
    service_ = server_->GrantTo(*client_task_);
  }

  mk::Task* ns_task_;
  std::unique_ptr<NameServer> server_;
  mk::Task* client_task_;
  mk::PortName service_;
};

TEST_F(NamingTest, RegisterAndResolveGrantsRight) {
  mk::Port* registered = nullptr;
  mk::Port* resolved = nullptr;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    auto my_port = env.PortAllocate();
    ASSERT_TRUE(my_port.ok());
    registered = *kernel_.ResolvePort(env.task(), *my_port);
    ASSERT_EQ(nc.Register(env, "/svc/echo", *my_port), base::Status::kOk);
    auto got = nc.Resolve(env, "/svc/echo");
    ASSERT_TRUE(got.ok());
    resolved = *kernel_.ResolvePort(env.task(), *got);
    server_->Stop();
    // Unblock the server with one last call.
    (void)nc.Resolve(env, "/svc/echo");
  });
  kernel_.Run();
  EXPECT_NE(registered, nullptr);
  EXPECT_EQ(registered, resolved);
  EXPECT_EQ(server_->registrations(), 1u);
}

TEST_F(NamingTest, ResolveMissingFails) {
  base::Status st = base::Status::kOk;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    st = nc.Resolve(env, "/no/such/name").status();
    server_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  kernel_.Run();
  EXPECT_EQ(st, base::Status::kNotFound);
}

TEST_F(NamingTest, DuplicateRegistrationRejected) {
  base::Status second = base::Status::kOk;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    auto p = env.PortAllocate();
    ASSERT_EQ(nc.Register(env, "/svc/dup", *p), base::Status::kOk);
    second = nc.Register(env, "/svc/dup", *p);
    server_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  kernel_.Run();
  EXPECT_EQ(second, base::Status::kAlreadyExists);
}

TEST_F(NamingTest, ListReturnsDirectChildrenOnly) {
  std::vector<std::string> names;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    auto p = env.PortAllocate();
    ASSERT_EQ(nc.Register(env, "/dev/disk0", *p), base::Status::kOk);
    ASSERT_EQ(nc.Register(env, "/dev/tty0", *p), base::Status::kOk);
    ASSERT_EQ(nc.Register(env, "/dev/net/le0", *p), base::Status::kOk);
    ASSERT_EQ(nc.Register(env, "/svc/fs", *p), base::Status::kOk);
    auto got = nc.List(env, "/dev");
    ASSERT_TRUE(got.ok());
    names = *got;
    server_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  kernel_.Run();
  EXPECT_EQ(names, (std::vector<std::string>{"/dev/disk0", "/dev/tty0"}));
}

TEST_F(NamingTest, AttributesAndSearch) {
  std::vector<std::string> found;
  std::string fetched;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    auto p = env.PortAllocate();
    Attribute a;
    std::strncpy(a.key, "class", sizeof(a.key) - 1);
    std::strncpy(a.value, "block", sizeof(a.value) - 1);
    ASSERT_EQ(nc.Register(env, "/dev/disk0", *p, {a}), base::Status::kOk);
    ASSERT_EQ(nc.Register(env, "/dev/tty0", *p), base::Status::kOk);
    ASSERT_EQ(nc.SetAttr(env, "/dev/tty0", "class", "char"), base::Status::kOk);
    auto s = nc.Search(env, "class", "block");
    ASSERT_TRUE(s.ok());
    found = *s;
    auto g = nc.GetAttr(env, "/dev/tty0", "class");
    ASSERT_TRUE(g.ok());
    fetched = *g;
    server_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  kernel_.Run();
  EXPECT_EQ(found, (std::vector<std::string>{"/dev/disk0"}));
  EXPECT_EQ(fetched, "char");
}

TEST_F(NamingTest, WatchDeliversNamespaceEvents) {
  uint32_t event_kind = 0;
  std::string event_name;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    auto notify = env.PortAllocate();
    ASSERT_TRUE(notify.ok());
    ASSERT_EQ(nc.Watch(env, "/svc", *notify), base::Status::kOk);
    auto p = env.PortAllocate();
    ASSERT_EQ(nc.Register(env, "/svc/newbie", *p), base::Status::kOk);
    mk::MachMessage msg;
    ASSERT_EQ(env.kernel().MachMsgReceive(*notify, &msg), base::Status::kOk);
    NameEvent ev;
    std::memcpy(&ev, msg.inline_data.data(), sizeof(ev));
    event_kind = ev.kind;
    event_name = ev.name;
    server_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  kernel_.Run();
  EXPECT_EQ(event_kind, 1u);
  EXPECT_EQ(event_name, "/svc/newbie");
}

TEST_F(NamingTest, LiteServiceResolvesCheaperThanFull) {
  mk::Task* lite_task = kernel_.CreateTask("mks-naming-lite");
  LiteNameServer lite(kernel_, lite_task);
  mk::PortName lite_service = lite.GrantTo(*client_task_);
  uint64_t full_cycles = 0;
  uint64_t lite_cycles = 0;
  kernel_.CreateThread(client_task_, "c", [&](mk::Env& env) {
    NameClient nc(service_);
    LiteNameClient lc(lite_service);
    auto p = env.PortAllocate();
    ASSERT_EQ(nc.Register(env, "/deeply/nested/service/path/entry", *p), base::Status::kOk);
    ASSERT_EQ(lc.Register(env, "/deeply/nested/service/path/entry", *p), base::Status::kOk);
    // Warm.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(nc.Resolve(env, "/deeply/nested/service/path/entry").ok());
      ASSERT_TRUE(lc.Resolve(env, "/deeply/nested/service/path/entry").ok());
    }
    uint64_t c0 = env.kernel().cpu().cycles();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(nc.Resolve(env, "/deeply/nested/service/path/entry").ok());
    }
    full_cycles = env.kernel().cpu().cycles() - c0;
    c0 = env.kernel().cpu().cycles();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(lc.Resolve(env, "/deeply/nested/service/path/entry").ok());
    }
    lite_cycles = env.kernel().cpu().cycles() - c0;
    server_->Stop();
    lite.Stop();
    (void)nc.Resolve(env, "/x");
    (void)lc.Resolve(env, "/x");
  });
  kernel_.Run();
  EXPECT_GT(full_cycles, lite_cycles * 11 / 10)
      << "the X.500-style service must cost measurably more than the lite one";
}

}  // namespace
}  // namespace mks
