#include "src/mks/loader/loader.h"

#include <gtest/gtest.h>

#include "src/mks/loader/module.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mks {
namespace {

LoadModule MakeLib(const std::string& name, std::vector<ModuleSymbol> exports,
                   bool coerced = false) {
  LoadModule m;
  m.name = name;
  m.shared_library = true;
  m.coerced = coerced;
  m.text_size = 3 * 4096;
  m.data_size = 4096;
  m.bss_size = 4096;
  m.exports = std::move(exports);
  return m;
}

LoadModule MakeProgram(const std::string& name, std::vector<std::string> needed,
                       std::vector<ModuleImport> imports) {
  LoadModule m;
  m.name = name;
  m.text_size = 2 * 4096;
  m.data_size = 4096;
  m.needed = std::move(needed);
  m.imports = std::move(imports);
  m.data_image = {1, 2, 3, 4};
  return m;
}

TEST(LoadModuleTest, SerializeParseRoundTrip) {
  LoadModule m = MakeLib("libc.so", {{"open", 0x100}, {"read", 0x180}});
  m.imports.push_back({"libmach.so", "mach_rpc"});
  m.needed.push_back("libmach.so");
  m.data_image = {9, 8, 7};
  auto image = m.Serialize();
  auto parsed = LoadModule::Parse(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "libc.so");
  EXPECT_TRUE(parsed->shared_library);
  EXPECT_FALSE(parsed->coerced);
  EXPECT_EQ(parsed->text_size, 3u * 4096);
  EXPECT_EQ(parsed->exports.size(), 2u);
  EXPECT_EQ(parsed->exports[1].name, "read");
  EXPECT_EQ(parsed->exports[1].offset, 0x180u);
  ASSERT_EQ(parsed->imports.size(), 1u);
  EXPECT_EQ(parsed->imports[0].library, "libmach.so");
  EXPECT_EQ(parsed->needed, (std::vector<std::string>{"libmach.so"}));
  EXPECT_EQ(parsed->data_image, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(LoadModuleTest, ParseRejectsGarbage) {
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_EQ(LoadModule::Parse(junk).status(), base::Status::kCorrupt);
  // Truncated valid prefix.
  LoadModule m = MakeLib("x", {});
  auto image = m.Serialize();
  image.resize(image.size() / 2);
  EXPECT_EQ(LoadModule::Parse(image).status(), base::Status::kCorrupt);
}

class LoaderTest : public mk::KernelTest {
 protected:
  Loader loader_{kernel_};
};

TEST_F(LoaderTest, LoadsProgramWithDependencyClosure) {
  ASSERT_EQ(loader_.RegisterModule(MakeLib("libc.so", {{"printf", 0x40}})), base::Status::kOk);
  ASSERT_EQ(loader_.RegisterModule(
                MakeLib("libfs.so", {{"fs_open", 0x80}})),
            base::Status::kOk);
  LoadModule prog = MakeProgram("app", {"libfs.so"},
                                {{"libfs.so", "fs_open"}, {"libc.so", "printf"}});
  prog.needed.push_back("libc.so");
  ASSERT_EQ(loader_.RegisterModule(std::move(prog)), base::Status::kOk);

  mk::Task* task = kernel_.CreateTask("t");
  auto result = loader_.LoadProgram(*task, "app");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->modules, (std::vector<std::string>{"libfs.so", "libc.so", "app"}));
  ASSERT_TRUE(result->resolved.contains("printf"));
  EXPECT_EQ(result->resolved.at("printf").module, "libc.so");
  EXPECT_GT(result->resolved.at("printf").address, 0u);
}

TEST_F(LoaderTest, MissingDependencyFails) {
  ASSERT_EQ(loader_.RegisterModule(MakeProgram("app", {"libmissing.so"}, {})),
            base::Status::kOk);
  mk::Task* task = kernel_.CreateTask("t");
  EXPECT_EQ(loader_.LoadProgram(*task, "app").status(), base::Status::kNotFound);
}

TEST_F(LoaderTest, UnresolvedSymbolFails) {
  ASSERT_EQ(loader_.RegisterModule(MakeLib("libc.so", {{"printf", 0x40}})), base::Status::kOk);
  ASSERT_EQ(loader_.RegisterModule(
                MakeProgram("app", {"libc.so"}, {{"libc.so", "no_such_fn"}})),
            base::Status::kOk);
  mk::Task* task = kernel_.CreateTask("t");
  EXPECT_EQ(loader_.LoadProgram(*task, "app").status(), base::Status::kNotFound);
}

TEST_F(LoaderTest, SharedTextObjectIsReusedAcrossTasks) {
  ASSERT_EQ(loader_.RegisterModule(MakeLib("libshared.so", {{"fn", 0}})), base::Status::kOk);
  ASSERT_EQ(loader_.RegisterModule(MakeProgram("app", {"libshared.so"}, {})),
            base::Status::kOk);
  mk::Task* t1 = kernel_.CreateTask("t1");
  mk::Task* t2 = kernel_.CreateTask("t2");
  ASSERT_TRUE(loader_.LoadProgram(*t1, "app").ok());
  const uint64_t text_objects_after_first = loader_.text_objects_created();
  ASSERT_TRUE(loader_.LoadProgram(*t2, "app").ok());
  EXPECT_EQ(loader_.text_objects_created(), text_objects_after_first)
      << "second task must reuse the shared library's text object";
}

TEST_F(LoaderTest, CoercedLibraryLoadsAtSameAddressEverywhere) {
  ASSERT_EQ(loader_.RegisterModule(MakeLib("libpm.so", {{"pm_draw", 0x10}}, /*coerced=*/true)),
            base::Status::kOk);
  ASSERT_EQ(loader_.RegisterModule(
                MakeProgram("app", {"libpm.so"}, {{"libpm.so", "pm_draw"}})),
            base::Status::kOk);
  mk::Task* t1 = kernel_.CreateTask("t1");
  mk::Task* t2 = kernel_.CreateTask("t2");
  auto r1 = loader_.LoadProgram(*t1, "app");
  auto r2 = loader_.LoadProgram(*t2, "app");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->resolved.at("pm_draw").address, r2->resolved.at("pm_draw").address);
  EXPECT_GE(r1->resolved.at("pm_draw").address, mk::VmMap::kCoercedMin);
}

TEST_F(LoaderTest, RestrictedResolutionOnlySearchesNamedLibrary) {
  // Two libraries export the same symbol; under SVR4 global resolution the
  // first loaded wins, under restricted resolution the named library wins.
  ASSERT_EQ(loader_.RegisterModule(MakeLib("liba.so", {{"dup_fn", 0x10}})), base::Status::kOk);
  ASSERT_EQ(loader_.RegisterModule(MakeLib("libb.so", {{"dup_fn", 0x20}})), base::Status::kOk);
  LoadModule prog = MakeProgram("app", {"liba.so", "libb.so"}, {{"libb.so", "dup_fn"}});
  ASSERT_EQ(loader_.RegisterModule(std::move(prog)), base::Status::kOk);

  mk::Task* t1 = kernel_.CreateTask("t1");
  loader_.set_policy(ResolutionPolicy::kSvr4Global);
  auto global = loader_.LoadProgram(*t1, "app");
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->resolved.at("dup_fn").module, "liba.so") << "global: load order wins";

  mk::Task* t2 = kernel_.CreateTask("t2");
  loader_.set_policy(ResolutionPolicy::kRestrictedPerLibrary);
  auto restricted = loader_.LoadProgram(*t2, "app");
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->resolved.at("dup_fn").module, "libb.so")
      << "restricted: the import's named library wins";
}

TEST_F(LoaderTest, InitializedDataIsVisibleInTask) {
  ASSERT_EQ(loader_.RegisterModule(MakeProgram("app", {}, {})), base::Status::kOk);
  mk::Task* task = kernel_.CreateTask("t");
  auto result = loader_.LoadProgram(*task, "app");
  ASSERT_TRUE(result.ok());
  // Data segment sits after the text pages; first bytes are the data image.
  const hw::VirtAddr data = result->base + hw::PageRound(2 * 4096);
  uint8_t bytes[4] = {};
  ASSERT_EQ(kernel_.CopyIn(*task, data, bytes, 4), base::Status::kOk);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[3], 4);
}

}  // namespace
}  // namespace mks
