#include <gtest/gtest.h>

#include "src/hw/disk.h"
#include "src/mks/pager/default_pager.h"
#include "src/mks/runtime/runtime.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mks {
namespace {

class PagerTest : public mk::KernelTest {
 protected:
  PagerTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(std::make_unique<hw::Disk>("paging", 3)));
    pager_task_ = kernel_.CreateTask("default-pager");
    pager_ = std::make_unique<DefaultPager>(kernel_, pager_task_,
                                            std::make_unique<BackdoorBlockStore>(disk_));
  }

  hw::Disk* disk_;
  mk::Task* pager_task_;
  std::unique_ptr<DefaultPager> pager_;
};

TEST_F(PagerTest, UnwrittenPagesPageInAsZeros) {
  auto object = pager_->CreateBackedObject(2 * hw::kPageSize);
  mk::Task* user = kernel_.CreateTask("user");
  auto addr = kernel_.VmMapObject(*user, object, 0, 2 * hw::kPageSize, mk::Prot::kReadWrite, true);
  ASSERT_TRUE(addr.ok());
  uint32_t value = 0xffffffff;
  kernel_.CreateThread(user, "u", [&](mk::Env& env) {
    ASSERT_EQ(env.CopyIn(*addr, &value, 4), base::Status::kOk);
    pager_->Stop();
  });
  kernel_.Run();
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(pager_->pageins_served(), 1u);
}

TEST_F(PagerTest, PreloadedContentPagesIn) {
  auto object = pager_->CreateBackedObject(4 * hw::kPageSize);
  std::vector<uint8_t> page(hw::kPageSize, 0xcd);
  ASSERT_EQ(pager_->Preload(object->pager_object_id(), 2, page.data()), base::Status::kOk);
  mk::Task* user = kernel_.CreateTask("user");
  auto addr = kernel_.VmMapObject(*user, object, 0, 4 * hw::kPageSize, mk::Prot::kReadWrite, true);
  ASSERT_TRUE(addr.ok());
  uint8_t b0 = 0xff;
  uint8_t b2 = 0;
  kernel_.CreateThread(user, "u", [&](mk::Env& env) {
    ASSERT_EQ(env.CopyIn(*addr, &b0, 1), base::Status::kOk);
    ASSERT_EQ(env.CopyIn(*addr + 2 * hw::kPageSize, &b2, 1), base::Status::kOk);
    pager_->Stop();
  });
  kernel_.Run();
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(b2, 0xcd);
}

class RuntimeTest : public mk::KernelTest {};

TEST_F(RuntimeTest, MutexProvidesMutualExclusion) {
  mk::Task* task = kernel_.CreateTask("t");
  SyncArena arena(kernel_, *task);
  RtMutex mutex(kernel_, arena);
  CThreads threads(kernel_, task);
  int counter = 0;
  int max_seen_inside = 0;
  int inside = 0;
  for (int i = 0; i < 4; ++i) {
    threads.Fork("worker", [&](mk::Env& env) {
      for (int j = 0; j < 10; ++j) {
        mutex.Lock(env);
        ++inside;
        max_seen_inside = std::max(max_seen_inside, inside);
        env.Compute(500);
        env.Yield();  // try hard to interleave inside the critical section
        ++counter;
        --inside;
        mutex.Unlock(env);
        env.Yield();
      }
    });
  }
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(counter, 40);
  EXPECT_EQ(max_seen_inside, 1) << "two threads were inside the critical section";
  EXPECT_GT(mutex.contended_acquires(), 0u) << "test never exercised contention";
}

TEST_F(RuntimeTest, ConditionWaitSignal) {
  mk::Task* task = kernel_.CreateTask("t");
  SyncArena arena(kernel_, *task);
  RtMutex mutex(kernel_, arena);
  RtCondition cond(kernel_, arena);
  CThreads threads(kernel_, task);
  bool ready = false;
  bool consumed = false;
  threads.Fork("consumer", [&](mk::Env& env) {
    mutex.Lock(env);
    while (!ready) {
      cond.Wait(env, mutex);
    }
    consumed = true;
    mutex.Unlock(env);
  });
  threads.Fork("producer", [&](mk::Env& env) {
    env.Yield();  // let the consumer wait first
    mutex.Lock(env);
    ready = true;
    cond.Signal(env);
    mutex.Unlock(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_TRUE(consumed);
}

TEST_F(RuntimeTest, ConditionBroadcastWakesAll) {
  mk::Task* task = kernel_.CreateTask("t");
  SyncArena arena(kernel_, *task);
  RtMutex mutex(kernel_, arena);
  RtCondition cond(kernel_, arena);
  CThreads threads(kernel_, task);
  bool go = false;
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    threads.Fork("waiter", [&](mk::Env& env) {
      mutex.Lock(env);
      while (!go) {
        cond.Wait(env, mutex);
      }
      ++woken;
      mutex.Unlock(env);
    });
  }
  threads.Fork("broadcaster", [&](mk::Env& env) {
    for (int i = 0; i < 3; ++i) {
      env.Yield();
    }
    mutex.Lock(env);
    go = true;
    cond.Broadcast(env);
    mutex.Unlock(env);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(woken, 3);
}

TEST_F(RuntimeTest, HeapMallocFreeCoalesces) {
  mk::Task* task = kernel_.CreateTask("t");
  RtHeap heap(kernel_, *task, 64 * 1024);
  auto a = heap.Malloc(1000);
  auto b = heap.Malloc(2000);
  auto c = heap.Malloc(3000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_GT(heap.bytes_in_use(), 6000u);
  ASSERT_EQ(heap.Free(*b), base::Status::kOk);
  ASSERT_EQ(heap.Free(*a), base::Status::kOk);  // coalesces with b's block
  // A request spanning a+b's combined space must now fit in the gap.
  auto d = heap.Malloc(2900);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(*d, *c);
  EXPECT_EQ(heap.Free(*d), base::Status::kOk);
  EXPECT_EQ(heap.Free(*c), base::Status::kOk);
  EXPECT_EQ(heap.bytes_in_use(), 0u);
  EXPECT_EQ(heap.Free(*c), base::Status::kInvalidAddress) << "double free must fail";
}

TEST_F(RuntimeTest, HeapExhaustionAndHighWater) {
  mk::Task* task = kernel_.CreateTask("t");
  RtHeap heap(kernel_, *task, 16 * 1024);
  auto a = heap.Malloc(15 * 1024);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(heap.Malloc(8 * 1024).status(), base::Status::kResourceShortage);
  EXPECT_GE(heap.high_water(), 15u * 1024);
}

}  // namespace
}  // namespace mks
