// Restart manager tests: death notice -> backoff -> factory respawn ->
// re-registration under the same name, and the restart budget's degraded
// mode once the budget is spent.
#include "src/mks/restart/restart_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/mk/rpc_robust.h"
#include "src/mk/server_loop.h"
#include "src/mks/naming/name_server.h"
#include "tests/mk/kernel_test_fixture.h"

namespace mks {
namespace {

constexpr uint32_t kEchoOp = 1;
constexpr char kName[] = "/svc/echo";

class RestartTest : public mk::KernelTest {
 protected:
  RestartTest() {
    ns_task_ = kernel_.CreateTask("mks-naming");
    ns_ = std::make_unique<NameServer>(kernel_, ns_task_);
    mgr_task_ = kernel_.CreateTask("mks-restart");
    client_task_ = kernel_.CreateTask("client");
    ns_for_client_ = ns_->GrantTo(*client_task_);
  }

  void MakeManager(const RestartPolicy& policy) {
    mgr_ = std::make_unique<RestartManager>(kernel_, mgr_task_, ns_->GrantTo(*mgr_task_), policy);
  }

  // Spawns the next echo-server generation: fresh task, port, ServerLoop.
  mk::Task* SpawnEcho() {
    const int gen = static_cast<int>(tasks_.size());
    mk::Task* task = kernel_.CreateTask("echo-g" + std::to_string(gen));
    auto recv = kernel_.PortAllocate(*task);
    EXPECT_TRUE(recv.ok());
    auto loop = std::make_shared<mk::ServerLoop>(*recv, "echo", 64);
    loop->Register(kEchoOp, [](mk::Env& env, const mk::RpcRequest& request, const uint8_t* req,
                               const uint8_t*, uint32_t) {
      env.RpcReply(request.token, req, request.req_len);
    });
    kernel_.CreateThread(task, "echo", [loop](mk::Env& env) { loop->Run(env); });
    tasks_.push_back(task);
    recvs_.push_back(*recv);
    loops_.push_back(loop);
    return task;
  }

  RestartManager::Factory EchoFactory() {
    return [this](mk::Env&) {
      mk::Task* task = SpawnEcho();
      auto right = kernel_.MakeSendRight(*task, recvs_.back(), *mgr_task_);
      EXPECT_TRUE(right.ok());
      return RestartManager::Respawned{task, right.ok() ? *right : mk::kNullPort};
    };
  }

  // Like SpawnEcho, but the loop heartbeats to the manager's health port so
  // the watchdog can tell wedged from idle. Requires mgr_ to exist.
  mk::Task* SpawnEchoBeating(uint64_t every_ns) {
    mk::Task* task = SpawnEcho();
    auto health = mgr_->HealthRightFor(*task);
    EXPECT_TRUE(health.ok());
    loops_.back()->EnableHeartbeat(*health, 1, every_ns);
    return task;
  }

  RestartManager::Factory BeatingEchoFactory(uint64_t every_ns) {
    return [this, every_ns](mk::Env&) {
      mk::Task* task = SpawnEchoBeating(every_ns);
      auto right = kernel_.MakeSendRight(*task, recvs_.back(), *mgr_task_);
      EXPECT_TRUE(right.ok());
      return RestartManager::Respawned{task, right.ok() ? *right : mk::kNullPort};
    };
  }

  void StopAll(mk::Env& env, NameClient& nc) {
    loops_.back()->Stop();
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");  // unblock the name server loop
  }

  mk::Task* ns_task_;
  std::unique_ptr<NameServer> ns_;
  mk::Task* mgr_task_;
  std::unique_ptr<RestartManager> mgr_;
  mk::Task* client_task_;
  mk::PortName ns_for_client_ = mk::kNullPort;
  std::vector<mk::Task*> tasks_;
  std::vector<mk::PortName> recvs_;
  std::vector<std::shared_ptr<mk::ServerLoop>> loops_;
};

TEST_F(RestartTest, CrashRespawnsAndReRegistersUnderSameName) {
  kernel_.tracer().Enable();
  MakeManager(RestartPolicy());
  mk::Task* gen0 = SpawnEcho();
  mgr_->Supervise(kName, gen0, EchoFactory());

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    NameClient nc(ns_for_client_);
    auto right = kernel_.MakeSendRight(*tasks_[0], recvs_[0], *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kName, *right), base::Status::kOk);
    const mk::PortResolver resolver = [&nc](mk::Env& e) { return nc.Resolve(e, kName); };
    mk::PortName cached = mk::kNullPort;
    uint32_t req[2] = {kEchoOp, 1};
    uint32_t reply[2] = {};
    ASSERT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kOk);
    EXPECT_EQ(reply[1], 1u);

    // Crash the server out from under the client.
    env.kernel().TerminateTask(tasks_[0]);
    req[1] = 2;
    ASSERT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kOk)
        << "the respawned server must answer under the same name";
    EXPECT_EQ(reply[1], 2u);
    EXPECT_EQ(mgr_->restarts(kName), 1u);
    EXPECT_FALSE(mgr_->degraded(kName));
    StopAll(env, nc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(mgr_->total_restarts(), 1u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("restart.total"), 1u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter(std::string("restart.") + kName + ".restarts"), 1u);
  bool saw_restart_event = false;
  for (const auto& event : kernel_.tracer().Events()) {
    if (event.type == mk::trace::EventType::kServerRestart) {
      saw_restart_event = true;
      EXPECT_EQ(event.a, tasks_.back()->id());
      EXPECT_EQ(event.b, 1u);
    }
  }
  EXPECT_TRUE(saw_restart_event);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

TEST_F(RestartTest, BudgetExhaustionDegradesCleanly) {
  RestartPolicy policy;
  policy.max_restarts = 1;
  MakeManager(policy);
  mk::Task* gen0 = SpawnEcho();
  mgr_->Supervise(kName, gen0, EchoFactory());

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    NameClient nc(ns_for_client_);
    auto right = kernel_.MakeSendRight(*tasks_[0], recvs_[0], *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kName, *right), base::Status::kOk);
    const mk::PortResolver resolver = [&nc](mk::Env& e) { return nc.Resolve(e, kName); };
    mk::PortName cached = mk::kNullPort;
    uint32_t req[2] = {kEchoOp, 1};
    uint32_t reply[2] = {};

    // First crash: within budget, the respawn answers.
    env.kernel().TerminateTask(tasks_[0]);
    ASSERT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kOk);
    EXPECT_EQ(mgr_->restarts(kName), 1u);

    // Second crash: budget spent, name unregistered, service degraded.
    env.kernel().TerminateTask(tasks_.back());
    EXPECT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kUnavailable);
    EXPECT_TRUE(mgr_->degraded(kName));
    EXPECT_EQ(mgr_->restarts(kName), 1u);

    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter(std::string("restart.") + kName + ".gave_up"), 1u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// The watchdog arm of the tentpole: a server wedged by kStallTask stops
// heartbeating; after heartbeat_deadline_ns of silence the manager
// force-terminates it (kWatchdogKill event, restart.<name>.watchdog_kills)
// and the normal death path respawns it — a robust client rides through.
TEST_F(RestartTest, WatchdogKillsWedgedServerAndRespawns) {
  kernel_.tracer().Enable();
  kernel_.faults().Enable(5);
  // The first request wedges the serving thread forever.
  kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                       mk::fault::FaultMode::kStallTask, 100, /*max_fires=*/1);
  RestartPolicy policy;
  policy.heartbeat_deadline_ns = 2'000'000;  // 2 simulated ms of silence
  policy.backoff_initial_ns = 100'000;
  MakeManager(policy);
  constexpr uint64_t kBeatNs = 500'000;
  mk::Task* gen0 = SpawnEchoBeating(kBeatNs);
  mgr_->Supervise(kName, gen0, BeatingEchoFactory(kBeatNs));

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    NameClient nc(ns_for_client_);
    auto right = kernel_.MakeSendRight(*tasks_[0], recvs_[0], *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kName, *right), base::Status::kOk);
    const mk::PortResolver resolver = [&nc](mk::Env& e) { return nc.Resolve(e, kName); };
    mk::PortName cached = mk::kNullPort;
    mk::RobustCallOptions opts;
    opts.attempt_timeout_ns = 1'500'000;  // below the watchdog deadline
    opts.max_attempts = 10;
    opts.retry_backoff_ns = 500'000;
    uint32_t req[2] = {kEchoOp, 42};
    uint32_t reply[2] = {};
    // The first request wedges gen-0. The call must still complete: attempts
    // time out while the server is silently wedged, the watchdog kills it,
    // the manager respawns, and a retry lands on gen-1.
    ASSERT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply),
                                opts),
              base::Status::kOk);
    EXPECT_EQ(reply[1], 42u);
    EXPECT_EQ(mgr_->watchdog_kills(kName), 1u);
    EXPECT_EQ(mgr_->restarts(kName), 1u);
    EXPECT_FALSE(mgr_->degraded(kName));
    StopAll(env, nc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter(std::string("restart.") + kName +
                                               ".watchdog_kills"),
            1u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter("restart.watchdog_kills"), 1u);
  bool saw_kill_event = false;
  for (const auto& event : kernel_.tracer().Events()) {
    if (event.type == mk::trace::EventType::kWatchdogKill) {
      saw_kill_event = true;
      EXPECT_EQ(event.a, tasks_[0]->id());
      EXPECT_GT(event.b, policy.heartbeat_deadline_ns);
    }
  }
  EXPECT_TRUE(saw_kill_event);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// An idle-but-healthy server must NOT be watchdog-killed: the timed receive
// beats from idle, so silence only ever means wedged.
TEST_F(RestartTest, IdleServerIsNotKilledByWatchdog) {
  RestartPolicy policy;
  policy.heartbeat_deadline_ns = 1'000'000;
  MakeManager(policy);
  constexpr uint64_t kBeatNs = 300'000;  // beats 3x faster than the deadline
  mk::Task* gen0 = SpawnEchoBeating(kBeatNs);
  mgr_->Supervise(kName, gen0, BeatingEchoFactory(kBeatNs));

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    // A long idle stretch: many deadlines pass with zero requests.
    (void)env.SleepNs(20'000'000);
    EXPECT_EQ(mgr_->watchdog_kills(kName), 0u);
    EXPECT_EQ(mgr_->restarts(kName), 0u);
    // And the server still answers.
    auto right = kernel_.MakeSendRight(*tasks_[0], recvs_[0], *client_task_);
    ASSERT_TRUE(right.ok());
    uint32_t req[2] = {kEchoOp, 9};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(*right, req, sizeof(req), reply, sizeof(reply)), base::Status::kOk);
    EXPECT_EQ(reply[1], 9u);
    NameClient nc(ns_for_client_);
    StopAll(env, nc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Deliberate shutdown: Unsupervise withdraws the watchdog before the server
// is stopped. Without it the stale heartbeat state would read as a wedge and
// the manager would "kill" the exited task and respawn an orphan generation.
TEST_F(RestartTest, UnsupervisedStopIsNotKilledOrRespawned) {
  kernel_.tracer().Enable();
  RestartPolicy policy;
  policy.heartbeat_deadline_ns = 1'000'000;
  MakeManager(policy);
  constexpr uint64_t kBeatNs = 300'000;
  mk::Task* gen0 = SpawnEchoBeating(kBeatNs);
  mgr_->Supervise(kName, gen0, BeatingEchoFactory(kBeatNs));

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    (void)env.SleepNs(3'000'000);  // several beats land: the watchdog is armed
    mgr_->Unsupervise(kName);
    loops_.back()->Stop();
    // Far past the deadline: a still-supervised stopped server would have
    // been "killed" and respawned by now.
    (void)env.SleepNs(5'000'000);
    EXPECT_EQ(mgr_->total_restarts(), 0u);
    EXPECT_EQ(kernel_.tracer().metrics().Counter("restart.watchdog_kills"), 0u);
    EXPECT_EQ(tasks_.size(), 1u);  // no orphan generation spawned
    NameClient nc(ns_for_client_);
    mgr_->Stop();
    ns_->Stop();
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Satellite: ResetBudget revives a degraded server — budget cleared, factory
// re-run, name re-registered, restart.<name>.revived exported.
TEST_F(RestartTest, ResetBudgetRevivesDegradedServer) {
  RestartPolicy policy;
  policy.max_restarts = 0;  // first death degrades immediately
  MakeManager(policy);
  mk::Task* gen0 = SpawnEcho();
  mgr_->Supervise(kName, gen0, EchoFactory());

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    NameClient nc(ns_for_client_);
    auto right = kernel_.MakeSendRight(*tasks_[0], recvs_[0], *client_task_);
    ASSERT_TRUE(right.ok());
    ASSERT_EQ(nc.Register(env, kName, *right), base::Status::kOk);
    const mk::PortResolver resolver = [&nc](mk::Env& e) { return nc.Resolve(e, kName); };
    mk::PortName cached = mk::kNullPort;
    uint32_t req[2] = {kEchoOp, 5};
    uint32_t reply[2] = {};

    env.kernel().TerminateTask(tasks_[0]);
    EXPECT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kUnavailable);
    EXPECT_TRUE(mgr_->degraded(kName));

    // Administrative revive: the manager respawns and re-registers.
    ASSERT_EQ(mgr_->ResetBudget(env, kName), base::Status::kOk);
    (void)env.SleepNs(1'000'000);  // let the manager process the request
    EXPECT_FALSE(mgr_->degraded(kName));
    EXPECT_EQ(mgr_->restarts(kName), 0u) << "revive resets the budget";
    cached = mk::kNullPort;
    ASSERT_EQ(mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply)),
              base::Status::kOk);
    EXPECT_EQ(reply[1], 5u);
    StopAll(env, nc);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.tracer().metrics().Counter(std::string("restart.") + kName + ".revived"), 1u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Without a name service (kNullPort) the manager still respawns; clients
// with a direct factory-published right recover without naming.
TEST_F(RestartTest, RespawnsWithoutNameService) {
  mgr_ = std::make_unique<RestartManager>(kernel_, mgr_task_, mk::kNullPort, RestartPolicy());
  mk::Task* gen0 = SpawnEcho();
  mgr_->Supervise(kName, gen0, EchoFactory());

  kernel_.CreateThread(client_task_, "client", [&](mk::Env& env) {
    env.kernel().TerminateTask(tasks_[0]);
    // Give the manager's backoff window time to pass.
    (void)env.SleepNs(5'000'000);
    EXPECT_EQ(mgr_->restarts(kName), 1u);
    // Call the respawned generation directly.
    auto right = kernel_.MakeSendRight(*tasks_.back(), recvs_.back(), *client_task_);
    ASSERT_TRUE(right.ok());
    uint32_t req[2] = {kEchoOp, 7};
    uint32_t reply[2] = {};
    EXPECT_EQ(env.RpcCall(*right, req, sizeof(req), reply, sizeof(reply)), base::Status::kOk);
    EXPECT_EQ(reply[1], 7u);
    loops_.back()->Stop();
    mgr_->Stop();
    ns_->Stop();
    NameClient nc(ns_for_client_);
    (void)nc.Resolve(env, "/x");
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

}  // namespace
}  // namespace mks
