// ScopedLogCapture and simulated-cycle log stamping.
#include <gtest/gtest.h>

#include "src/base/log.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"

namespace base {
namespace {

// Tests force-log at kError so they pass regardless of the ambient level.
TEST(LogCapture, CapturesInsteadOfStderr) {
  ScopedLogCapture capture;
  WPOS_LOG(kError) << "captured message one";
  WPOS_LOG(kError) << "captured message two";
  EXPECT_TRUE(capture.Contains("captured message one"));
  EXPECT_TRUE(capture.Contains("captured message two"));
  EXPECT_TRUE(capture.Contains("log_test.cc"));
  capture.Clear();
  EXPECT_FALSE(capture.Contains("captured message one"));
}

TEST(LogCapture, InnermostScopeWins) {
  ScopedLogCapture outer;
  WPOS_LOG(kError) << "goes to outer";
  {
    ScopedLogCapture inner;
    WPOS_LOG(kError) << "goes to inner";
    EXPECT_TRUE(inner.Contains("goes to inner"));
    EXPECT_FALSE(outer.Contains("goes to inner"));
  }
  WPOS_LOG(kError) << "outer again";
  EXPECT_TRUE(outer.Contains("goes to outer"));
  EXPECT_TRUE(outer.Contains("outer again"));
}

TEST(LogCycleStamp, LiveKernelStampsCycleCount) {
  ScopedLogCapture capture;
  WPOS_LOG(kError) << "before kernel";
  EXPECT_EQ(capture.text().find(" @"), std::string::npos)
      << "no cycle stamp without a registered source";
  {
    hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
    mk::Kernel kernel(&machine);
    capture.Clear();
    WPOS_LOG(kError) << "during kernel";
    EXPECT_NE(capture.text().find(" @"), std::string::npos)
        << "log line missing cycle stamp: " << capture.text();
  }
  // The kernel restores the previous (empty) source on destruction.
  capture.Clear();
  WPOS_LOG(kError) << "after kernel";
  EXPECT_EQ(capture.text().find(" @"), std::string::npos);
}

TEST(LogCycleStamp, NestedKernelsRestoreOuterClock) {
  hw::Machine outer_machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel outer(&outer_machine);
  {
    hw::Machine inner_machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
    mk::Kernel inner(&inner_machine);
    ScopedLogCapture capture;
    WPOS_LOG(kError) << "inner active";
    EXPECT_NE(capture.text().find(" @"), std::string::npos);
  }
  // Outer kernel's clock is back in effect — the stamp is still present.
  ScopedLogCapture capture;
  WPOS_LOG(kError) << "outer restored";
  EXPECT_NE(capture.text().find(" @"), std::string::npos);
}

}  // namespace
}  // namespace base
