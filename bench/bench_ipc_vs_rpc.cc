// Reproduces the IPC-rework claim: "The result was a two to ten times
// improvement in message-passing performance with the improvement's
// magnitude depending primarily on the number of bytes transmitted."
//
// Sweep: round-trip request/reply of N payload bytes, legacy mach_msg
// (queued, reply port, kernel buffer double copy, OOL virtual copy for large
// payloads) versus the reworked RPC (synchronous handoff, single physical
// copy, by-reference bulk data).
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>
#include <vector>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"

namespace {

constexpr int kWarmup = 50;
constexpr int kOps = 300;
const uint32_t kSizes[] = {0, 32, 128, 512, 2048, 8192, 32768};
// Payloads above this go out-of-line (virtual copy) in the legacy system, as
// real MIG stubs did.
constexpr uint32_t kLegacyInlineLimit = 2048;

struct Pair {
  double rpc_cycles = 0;
  double ipc_cycles = 0;
};

Pair MeasureSize(uint32_t size, const std::string& trace_path = std::string()) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  bench::ArmTrace(kernel, trace_path);
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  Pair out;

  kernel.CreateThread(server_task, "server", [&, recv = *recv](mk::Env& env) {
    // Phase 1: RPC echo server.
    char buf[256];
    std::vector<uint8_t> bulk(64 * 1024);
    for (int i = 0; i < kWarmup + kOps; ++i) {
      mk::RpcRef ref;
      ref.recv_buf = bulk.data();
      ref.recv_cap = static_cast<uint32_t>(bulk.size());
      auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
      if (!req.ok()) {
        return;
      }
      benchmark::DoNotOptimize(bulk.data());  // data already physically here
      env.RpcReply(req->token, nullptr, 0);
    }
    // Phase 2: legacy server — receive, touch OOL data, send reply message.
    for (int i = 0; i < kWarmup + kOps; ++i) {
      mk::MachMessage msg;
      if (kernel.MachMsgReceive(recv, &msg) != base::Status::kOk) {
        return;
      }
      // Consume the received OOL data (the virtual copy's per-page faults
      // and cold reads bite here, exactly where they bit real Mach users).
      for (const mk::OolDescriptor& ool : msg.ool) {
        static std::vector<uint8_t> sink;
        sink.resize(ool.size);
        (void)env.CopyIn(ool.address, sink.data(), ool.size);
        (void)kernel.VmDeallocate(env.task(), hw::PageTrunc(ool.address),
                                  hw::PageRound(ool.size));
      }
      // Inline payloads are consumed too (already copied out by receive).
      benchmark::DoNotOptimize(msg.inline_data.data());
      mk::MachMessage reply;
      reply.dest = msg.reply_port;
      if (kernel.MachMsgSend(std::move(reply)) != base::Status::kOk) {
        return;
      }
    }
  });

  kernel.CreateThread(client_task, "client", [&, send = *send](mk::Env& env) {
    // --- Reworked RPC ---------------------------------------------------------
    std::vector<uint8_t> payload(size > 0 ? size : 1);
    char reply[64];
    auto do_rpc = [&] {
      mk::RpcRef ref;
      uint32_t inline_len = size;
      if (size > 256) {
        // Too large for the message body: passed by reference.
        ref.send_data = payload.data();
        ref.send_len = size;
        inline_len = 0;
      }
      (void)env.RpcCall(send, payload.data(), inline_len, reply, sizeof(reply), nullptr,
                        size > 256 ? &ref : nullptr);
    };
    for (int i = 0; i < kWarmup; ++i) {
      do_rpc();
    }
    uint64_t c0 = kernel.cpu().cycles();
    for (int i = 0; i < kOps; ++i) {
      do_rpc();
    }
    out.rpc_cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kOps;

    // --- Legacy mach_msg ---------------------------------------------------------
    auto reply_port = env.PortAllocate();
    WPOS_CHECK(reply_port.ok());
    hw::VirtAddr ool_buf = 0;
    if (size > kLegacyInlineLimit) {
      auto addr = env.VmAllocate(hw::PageRound(size));
      WPOS_CHECK(addr.ok());
      ool_buf = *addr;
      WPOS_CHECK(env.Touch(ool_buf, size, true) == base::Status::kOk);
    }
    auto do_legacy = [&] {
      mk::MachMessage msg;
      msg.dest = send;
      msg.reply_port = *reply_port;
      if (size > kLegacyInlineLimit) {
        msg.ool.push_back({ool_buf, size, false});
      } else if (size > 0) {
        msg.inline_data.assign(payload.begin(), payload.begin() + size);
      }
      (void)kernel.MachMsgSend(std::move(msg));
      mk::MachMessage rep;
      (void)kernel.MachMsgReceive(*reply_port, &rep);
      if (size > kLegacyInlineLimit) {
        // The sender reuses its buffer for the next message, so every page
        // it rewrites takes a copy-on-write fault against the snapshot the
        // previous send created — the hidden cost of virtual copy.
        (void)kernel.UserFill(env.task(), ool_buf, static_cast<uint8_t>(size), size);
      }
    };
    for (int i = 0; i < kWarmup; ++i) {
      do_legacy();
    }
    c0 = kernel.cpu().cycles();
    for (int i = 0; i < kOps; ++i) {
      do_legacy();
    }
    out.ipc_cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kOps;
    kernel.PortDestroy(*server_task, *recv);
  });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
  return out;
}

void PrintSweep(bench::JsonReport* report, const std::string& trace_path) {
  std::printf("\n=== IPC rework: mach_msg vs RPC round trip (cycles/op) ===\n");
  std::printf("%10s %14s %14s %14s\n", "bytes", "mach_msg", "RPC", "improvement");
  bool first = true;
  for (uint32_t size : kSizes) {
    // `--trace` captures the first (zero-byte) sweep point's run.
    const Pair p = MeasureSize(size, first ? trace_path : std::string());
    first = false;
    std::printf("%10u %14.0f %14.0f %13.1fx\n", size, p.ipc_cycles, p.rpc_cycles,
                p.ipc_cycles / p.rpc_cycles);
    const std::string prefix = "bytes" + std::to_string(size);
    report->Add(prefix + ".machmsg_cycles", p.ipc_cycles);
    report->Add(prefix + ".rpc_cycles", p.rpc_cycles);
    // Paper: "a two to ten times improvement"; compare against the low bound.
    report->Add(prefix + ".improvement", p.ipc_cycles / p.rpc_cycles, 2.0);
  }
  std::printf("paper: \"a two to ten times improvement ... depending primarily on the\n"
              "number of bytes transmitted\"\n\n");
}

void BM_Sweep(benchmark::State& state) {
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const Pair p = MeasureSize(size);
    state.SetIterationTime(p.rpc_cycles * kOps / 133e6);
    state.counters["rpc_cycles"] = p.rpc_cycles;
    state.counters["machmsg_cycles"] = p.ipc_cycles;
    state.counters["improvement"] = p.ipc_cycles / p.rpc_cycles;
  }
}
BENCHMARK(BM_Sweep)->Arg(0)->Arg(32)->Arg(512)->Arg(8192)->Arg(32768)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  PrintSweep(&report, trace_path);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
