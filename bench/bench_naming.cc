// Reproduces the name-service claim: the X.500-style design "was
// sufficiently expensive that Release 2 of the IBM Microkernel added an
// alternative, much simplified name service for embedded configurations."
// Measures resolve/register/search on the full service and resolve/register
// on the lite service, per operation.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/hw/machine.h"
#include "src/mks/naming/lite_name_server.h"
#include "src/mks/naming/name_server.h"

namespace {

constexpr int kOps = 300;
constexpr int kNamespaceEntries = 48;

struct Numbers {
  double full_resolve = 0;
  double full_register = 0;
  double full_search = 0;
  double full_list = 0;
  double lite_resolve = 0;
  double lite_register = 0;
};

Numbers MeasureAll(const std::string& trace_path = std::string()) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  bench::ArmTrace(kernel, trace_path);
  mk::Task* full_task = kernel.CreateTask("mks-naming");
  mks::NameServer full(kernel, full_task);
  mk::Task* lite_task = kernel.CreateTask("mks-naming-lite");
  mks::LiteNameServer lite(kernel, lite_task);
  mk::Task* client = kernel.CreateTask("client");
  const mk::PortName full_svc = full.GrantTo(*client);
  const mk::PortName lite_svc = lite.GrantTo(*client);
  Numbers out;

  kernel.CreateThread(client, "main", [&](mk::Env& env) {
    mks::NameClient nc(full_svc);
    mks::LiteNameClient lc(lite_svc);
    auto port = env.PortAllocate();
    WPOS_CHECK(port.ok());
    // Populate a realistic namespace on both services.
    mks::Attribute attr;
    std::strncpy(attr.key, "class", sizeof(attr.key) - 1);
    std::strncpy(attr.value, "service", sizeof(attr.value) - 1);
    for (int i = 0; i < kNamespaceEntries; ++i) {
      const std::string name = "/svc/group" + std::to_string(i % 6) + "/entry" +
                               std::to_string(i);
      WPOS_CHECK(nc.Register(env, name, *port, {attr}) == base::Status::kOk);
      WPOS_CHECK(lc.Register(env, name, *port) == base::Status::kOk);
    }
    auto measure = [&](auto&& op) {
      for (int i = 0; i < 20; ++i) {
        op(i);
      }
      const uint64_t c0 = kernel.cpu().cycles();
      for (int i = 0; i < kOps; ++i) {
        op(i);
      }
      return static_cast<double>(kernel.cpu().cycles() - c0) / kOps;
    };
    out.full_resolve = measure([&](int) { WPOS_CHECK(nc.Resolve(env, "/svc/group3/entry21").ok()); });
    out.lite_resolve = measure([&](int) { WPOS_CHECK(lc.Resolve(env, "/svc/group3/entry21").ok()); });
    int serial = 0;
    out.full_register = measure([&](int) {
      WPOS_CHECK(nc.Register(env, "/tmp/full" + std::to_string(serial++), *port) ==
                 base::Status::kOk);
    });
    serial = 0;
    out.lite_register = measure([&](int) {
      WPOS_CHECK(lc.Register(env, "/tmp/lite" + std::to_string(serial++), *port) ==
                 base::Status::kOk);
    });
    out.full_search = measure([&](int) { WPOS_CHECK(nc.Search(env, "class", "service").ok()); });
    out.full_list = measure([&](int) { WPOS_CHECK(nc.List(env, "/svc/group3").ok()); });
    full.Stop();
    lite.Stop();
    (void)nc.Resolve(env, "/x");
    (void)lc.Resolve(env, "/x");
  });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
  return out;
}

void PrintNaming(const Numbers& n, bench::JsonReport* report) {
  report->Add("full.resolve_cycles", n.full_resolve);
  report->Add("full.register_cycles", n.full_register);
  report->Add("full.search_cycles", n.full_search);
  report->Add("full.list_cycles", n.full_list);
  report->Add("lite.resolve_cycles", n.lite_resolve);
  report->Add("lite.register_cycles", n.lite_register);
  report->Add("resolve.full_over_lite", n.full_resolve / n.lite_resolve);
  report->Add("register.full_over_lite", n.full_register / n.lite_register);
  std::printf("\n=== Name service: X.500-style vs Release-2 lite (cycles/op) ===\n");
  std::printf("%-14s %14s %14s %10s\n", "operation", "full (X.500)", "lite", "full/lite");
  std::printf("%-14s %14.0f %14.0f %10.2f\n", "resolve", n.full_resolve, n.lite_resolve,
              n.full_resolve / n.lite_resolve);
  std::printf("%-14s %14.0f %14.0f %10.2f\n", "register", n.full_register, n.lite_register,
              n.full_register / n.lite_register);
  std::printf("%-14s %14.0f %14s\n", "attr search", n.full_search, "(n/a)");
  std::printf("%-14s %14.0f %14s\n", "list", n.full_list, "(n/a)");
  std::printf("paper: attributes, complex formats, search and notifications made the full\n"
              "service \"sufficiently expensive\" to justify the lite service.\n\n");
}

void BM_Naming(benchmark::State& state) {
  const Numbers n = MeasureAll();
  for (auto _ : state) {
    state.SetIterationTime(n.full_resolve * kOps / 133e6);
    state.counters["full_resolve"] = n.full_resolve;
    state.counters["lite_resolve"] = n.lite_resolve;
  }
}
BENCHMARK(BM_Naming)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  PrintNaming(MeasureAll(trace_path), &report);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
