#include "bench/lib/json_report.h"

#include <cstdio>
#include <fstream>

namespace bench {

namespace {
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

void JsonReport::Add(const std::string& name, double measured, double paper) {
  rows_[name] = Row{measured, paper};
}

std::string JsonReport::ToJson() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, row] : rows_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "  \"" + name + "\": {\"paper\": " + Num(row.paper) +
           ", \"measured\": " + Num(row.measured);
    if (row.paper != 0.0) {
      out += ", \"ratio\": " + Num(row.measured / row.paper);
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

bool JsonReport::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << ToJson();
  return static_cast<bool>(f);
}

std::string ExtractFlag(int* argc, char** argv, const std::string& flag) {
  std::string value;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < *argc) {
      value = argv[++i];
      continue;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
      value = arg.substr(flag.size() + 1);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return value;
}

}  // namespace bench
