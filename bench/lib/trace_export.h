// Shared `--trace <path>` support for the bench binaries. Every bench_*
// accepts the flag; the designated representative run arms the kernel's
// tracer and exports two artifacts:
//   <path>            Chrome trace-event JSON (slices + causal flow arrows)
//   <path>.trees.txt  deterministic causal request-tree report with per-hop
//                     queue-wait / handler attribution
// Tracing is host-side bookkeeping (zero simulated cycles), so arming it on
// a measured run does not move any reported number — bench_table2 checks
// that equality on every run.
#ifndef BENCH_LIB_TRACE_EXPORT_H_
#define BENCH_LIB_TRACE_EXPORT_H_

#include <string>

namespace mk {
class Kernel;
}

namespace bench {

// Removes `--trace <path>` from argv (before benchmark::Initialize rejects
// it) and returns the path, or "" when absent.
std::string ExtractTracePath(int* argc, char** argv);

// Enables `kernel`'s tracer when `path` is non-empty.
void ArmTrace(mk::Kernel& kernel, const std::string& path);

// Writes the two artifacts for an armed kernel; no-op on an empty path.
void ExportTrace(mk::Kernel& kernel, const std::string& path);

}  // namespace bench

#endif  // BENCH_LIB_TRACE_EXPORT_H_
