#include "bench/lib/trace_export.h"

#include <fstream>

#include "bench/lib/json_report.h"
#include "src/base/log.h"
#include "src/mk/kernel.h"
#include "src/mk/trace/exporters.h"

namespace bench {

std::string ExtractTracePath(int* argc, char** argv) {
  return ExtractFlag(argc, argv, "--trace");
}

void ArmTrace(mk::Kernel& kernel, const std::string& path) {
  if (!path.empty()) {
    kernel.tracer().Enable();
  }
}

void ExportTrace(mk::Kernel& kernel, const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::ofstream chrome(path);
  WPOS_CHECK(static_cast<bool>(chrome)) << "cannot write " << path;
  mk::trace::WriteChromeTrace(chrome, kernel);
  const std::string trees_path = path + ".trees.txt";
  std::ofstream trees(trees_path);
  WPOS_CHECK(static_cast<bool>(trees)) << "cannot write " << trees_path;
  mk::trace::WriteRequestTrees(trees, kernel);
}

}  // namespace bench
