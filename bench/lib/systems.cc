#include "bench/lib/systems.h"

#include "src/base/log.h"

namespace bench {

namespace {
constexpr uint64_t kWposRam = 64ull * 1024 * 1024;  // the PowerPC 604 box
constexpr uint64_t kMonoRam = 16ull * 1024 * 1024;  // the Pentium box
constexpr uint64_t kDiskSectors = 256 * 1024;       // 128 MB
}  // namespace

// --- WPOS --------------------------------------------------------------------------

WposSystem::WposSystem() {
  machine_ = std::make_unique<hw::Machine>(hw::MachineConfig{.ram_bytes = kWposRam});
  kernel_ = std::make_unique<mk::Kernel>(machine_.get());
  disk_ = static_cast<hw::Disk*>(machine_->AddDevice(
      std::make_unique<hw::Disk>("disk0", 3, hw::Disk::Geometry{.sectors = kDiskSectors})));
  fb_dev_ = new hw::Framebuffer("fb0", machine_.get(), 640, 480);
  machine_->AddDevice(std::unique_ptr<hw::Device>(fb_dev_));

  // Microkernel services.
  mk::Task* mks_task = kernel_->CreateTask("mks");
  name_server_ = std::make_unique<mks::NameServer>(*kernel_, mks_task);

  // Drivers (user-level).
  rm_ = std::make_unique<drv::ResourceManager>(*kernel_);
  mk::Task* disk_task = kernel_->CreateTask("disk-driver");
  disk_driver_ = std::make_unique<drv::DiskDriver>(*kernel_, disk_task, disk_, rm_.get());
  fb_driver_ = std::make_unique<drv::FbDriver>(*kernel_, fb_dev_);

  // File server over the disk driver's RPC service.
  mk::Task* fs_task = kernel_->CreateTask("file-server");
  fs_task_ = fs_task;
  block_store_ = std::make_unique<drv::RpcBlockStore>(disk_driver_->GrantTo(*fs_task),
                                                      disk_->num_sectors());
  cache_ = std::make_unique<svc::BlockCache>(*kernel_, block_store_.get(), 2048);
  hpfs_ = std::make_unique<svc::HpfsFs>(*kernel_, cache_.get(), 131072);
  file_server_ = std::make_unique<svc::FileServer>(*kernel_, fs_task);
  WPOS_CHECK(file_server_->AddMount("/", hpfs_.get()) == base::Status::kOk);

  // Default pager on its own disk region (same device, via driver).
  mk::Task* pager_task = kernel_->CreateTask("default-pager");
  pager_ = std::make_unique<mks::DefaultPager>(
      *kernel_, pager_task, std::make_unique<mks::BackdoorBlockStore>(disk_, 300'000));

  // OS/2 personality.
  mk::Task* os2_task = kernel_->CreateTask("os2-server");
  os2_server_ = std::make_unique<pers::Os2Server>(*kernel_, os2_task);
  process_ = std::make_unique<pers::Os2Process>(*kernel_, *os2_server_, *file_server_, "app");
  desktop_ = std::make_unique<pers::PmDesktop>(*kernel_, fb_driver_.get());
  auto session = desktop_->Attach(*process_->task());
  WPOS_CHECK(session.ok());
  pm_session_ = std::move(*session);
}

WposSystem::~WposSystem() = default;

void WposSystem::RunApp(std::function<void(mk::Env&)> body) {
  if (!formatted_) {
    // mkfs must run inside the file server's task: the block store's send
    // right to the disk driver lives in that task's port space.
    kernel_->CreateThread(fs_task_, "mkfs", [this](mk::Env& env) {
      WPOS_CHECK(hpfs_->Format(env) == base::Status::kOk);
      formatted_ = true;
    });
  }
  kernel_->CreateThread(process_->task(), "app-main",
                        [this, body = std::move(body)](mk::Env& env) {
    while (!formatted_) {
      env.SleepNs(200'000);
    }
    body(env);
  });
  kernel_->Run();
}

// --- Mono --------------------------------------------------------------------------

MonoSystem::MonoSystem() {
  machine_ = std::make_unique<hw::Machine>(hw::MachineConfig{.ram_bytes = kMonoRam});
  kernel_ = std::make_unique<mk::Kernel>(machine_.get());
  disk_ = static_cast<hw::Disk*>(machine_->AddDevice(
      std::make_unique<hw::Disk>("disk0", 3, hw::Disk::Geometry{.sectors = kDiskSectors})));
  fb_dev_ = new hw::Framebuffer("fb0", machine_.get(), 640, 480);
  machine_->AddDevice(std::unique_ptr<hw::Device>(fb_dev_));
  store_ = std::make_unique<baseline::KernelDiskStore>(*kernel_, disk_);
  cache_ = std::make_unique<svc::BlockCache>(*kernel_, store_.get(), 2048);
  hpfs_ = std::make_unique<svc::HpfsFs>(*kernel_, cache_.get(), 131072);
  os_ = std::make_unique<baseline::MonolithicOs>(*kernel_, hpfs_.get(), fb_dev_);
  app_task_ = kernel_->CreateTask("os2-app", /*app_footprint_instr=*/4096);
  auto vram = os_->MapVram(*app_task_);
  WPOS_CHECK(vram.ok());
  vram_ = *vram;
}

MonoSystem::~MonoSystem() = default;

void MonoSystem::RunApp(std::function<void(mk::Env&)> body) {
  kernel_->CreateThread(app_task_, "app-main", [this, body = std::move(body)](mk::Env& env) {
    if (!formatted_) {
      WPOS_CHECK(hpfs_->Format(env) == base::Status::kOk);
      formatted_ = true;
    }
    body(env);
  });
  kernel_->Run();
}

// --- API adapters ----------------------------------------------------------------------

namespace {

class WposApi : public Os2ApiBase {
 public:
  explicit WposApi(WposSystem* sys) : sys_(sys) {}

  base::Result<uint64_t> Open(mk::Env& env, const std::string& path, uint32_t flags) override {
    return sys_->process().DosOpen(env, path, flags);
  }
  base::Status Close(mk::Env& env, uint64_t handle) override {
    return sys_->process().DosClose(env, handle);
  }
  base::Result<uint32_t> Read(mk::Env& env, uint64_t h, uint64_t off, void* out,
                              uint32_t len) override {
    return sys_->process().DosRead(env, h, off, out, len);
  }
  base::Result<uint32_t> Write(mk::Env& env, uint64_t h, uint64_t off, const void* data,
                               uint32_t len) override {
    return sys_->process().DosWrite(env, h, off, data, len);
  }
  base::Status Mkdir(mk::Env& env, const std::string& path) override {
    return sys_->process().DosMkdir(env, path);
  }
  base::Status Unlink(mk::Env& env, const std::string& path) override {
    return sys_->process().DosDelete(env, path);
  }
  base::Result<size_t> DirCount(mk::Env& env, const std::string& path) override {
    auto entries = sys_->process().DosFindAll(env, path);
    if (!entries.ok()) {
      return entries.status();
    }
    return entries->size();
  }
  base::Result<uint32_t> WinCreate(mk::Env& env, uint32_t x, uint32_t y, uint32_t w,
                                   uint32_t h) override {
    auto hwnd = sys_->pm().CreateWindow(env, "w", x, y, w, h);
    if (!hwnd.ok()) {
      return hwnd.status();
    }
    return *hwnd;
  }
  base::Status WinPost(mk::Env& env, uint32_t hwnd, uint32_t msg, uint32_t p1,
                       uint32_t p2) override {
    return sys_->pm().PostMsg(env, hwnd, msg, p1, p2);
  }
  base::Result<uint32_t> WinGet(mk::Env& env, uint32_t hwnd) override {
    auto msg = sys_->pm().GetMsg(env, hwnd);
    if (!msg.ok()) {
      return msg.status();
    }
    return msg->msg;
  }
  base::Status FillRect(mk::Env& env, uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                        uint32_t h, uint8_t color) override {
    return sys_->pm().FillRect(env, hwnd, x, y, w, h, color);
  }
  base::Status BitBlt(mk::Env& env, uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                      uint32_t h) override {
    return sys_->pm().BitBlt(env, hwnd, x, y, w, h);
  }
  base::Status WinSwitch(mk::Env& env, uint32_t hwnd) override {
    return sys_->pm().SwitchTo(env, hwnd);
  }

 private:
  WposSystem* sys_;
};

class MonoApi : public Os2ApiBase {
 public:
  explicit MonoApi(MonoSystem* sys) : sys_(sys) {}

  base::Result<uint64_t> Open(mk::Env& env, const std::string& path, uint32_t flags) override {
    return sys_->os().Open(env, path, flags);
  }
  base::Status Close(mk::Env& env, uint64_t handle) override {
    return sys_->os().Close(env, handle);
  }
  base::Result<uint32_t> Read(mk::Env& env, uint64_t h, uint64_t off, void* out,
                              uint32_t len) override {
    return sys_->os().Read(env, h, off, out, len);
  }
  base::Result<uint32_t> Write(mk::Env& env, uint64_t h, uint64_t off, const void* data,
                               uint32_t len) override {
    return sys_->os().Write(env, h, off, data, len);
  }
  base::Status Mkdir(mk::Env& env, const std::string& path) override {
    return sys_->os().Mkdir(env, path);
  }
  base::Status Unlink(mk::Env& env, const std::string& path) override {
    return sys_->os().Unlink(env, path);
  }
  base::Result<size_t> DirCount(mk::Env& env, const std::string& path) override {
    auto entries = sys_->os().ReadDir(env, path);
    if (!entries.ok()) {
      return entries.status();
    }
    return entries->size();
  }
  base::Result<uint32_t> WinCreate(mk::Env& env, uint32_t x, uint32_t y, uint32_t w,
                                   uint32_t h) override {
    return sys_->os().WinCreate(env, x, y, w, h);
  }
  base::Status WinPost(mk::Env& env, uint32_t hwnd, uint32_t msg, uint32_t p1,
                       uint32_t p2) override {
    return sys_->os().WinPost(env, hwnd, msg, p1, p2);
  }
  base::Result<uint32_t> WinGet(mk::Env& env, uint32_t hwnd) override {
    auto msg = sys_->os().WinGet(env, hwnd);
    if (!msg.ok()) {
      return msg.status();
    }
    return msg->msg;
  }
  base::Status FillRect(mk::Env& env, uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                        uint32_t h, uint8_t color) override {
    return sys_->os().WinFillRect(env, sys_->app_task(), sys_->vram(), hwnd, x, y, w, h, color);
  }
  base::Status BitBlt(mk::Env& env, uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                      uint32_t h) override {
    return sys_->os().WinBitBlt(env, sys_->app_task(), sys_->vram(), hwnd, x, y, w, h);
  }
  base::Status WinSwitch(mk::Env& env, uint32_t hwnd) override {
    return sys_->os().WinSwitch(env, sys_->app_task(), sys_->vram(), hwnd);
  }

 private:
  MonoSystem* sys_;
};

}  // namespace

std::unique_ptr<Os2ApiBase> WposSystem::MakeApi() { return std::make_unique<WposApi>(this); }
std::unique_ptr<Os2ApiBase> MonoSystem::MakeApi() { return std::make_unique<MonoApi>(this); }

}  // namespace bench
