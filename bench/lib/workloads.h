// The Table 1 workload suite. Each workload reproduces the *profile* of its
// paper counterpart (where the time goes), not the retail binary:
//   File Intensive 1  (IBM Works applications): document processing — many
//                     small files created, written, re-read, listed, deleted.
//   File Intensive 2  (IBM Works ToDo): record-oriented — one database file,
//                     many small in-place record reads/updates.
//   Graphics Low/Medium/High (Klondike): frame loop of application compute
//                     plus direct-to-framebuffer drawing; the level scales
//                     the number of draw calls and pixels per frame.
//   PM Tasking Medium (Swp32): two windows exchanging messages and switching.
//   PM Tasking High   (Wind32): many windows, rapid switching with repaints.
#ifndef BENCH_LIB_WORKLOADS_H_
#define BENCH_LIB_WORKLOADS_H_

#include <string>
#include <vector>

#include "bench/lib/systems.h"

namespace bench {

struct WorkloadResult {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  double seconds = 0;  // simulated
};

using Workload = void (*)(mk::Env&, Os2ApiBase&);

void FileIntensive1(mk::Env& env, Os2ApiBase& api);
void FileIntensive2(mk::Env& env, Os2ApiBase& api);
void GraphicsLow(mk::Env& env, Os2ApiBase& api);
void GraphicsMedium(mk::Env& env, Os2ApiBase& api);
void GraphicsHigh(mk::Env& env, Os2ApiBase& api);
void PmTaskingMedium(mk::Env& env, Os2ApiBase& api);
void PmTaskingHigh(mk::Env& env, Os2ApiBase& api);

struct NamedWorkload {
  const char* name;           // paper row name
  const char* content;        // paper "Application Content"
  Workload fn;
  double paper_ratio;         // the paper's WPOS:OS/2 ratio
};

// The seven Table 1 rows, in paper order.
const std::vector<NamedWorkload>& Table1Workloads();

// Runs `workload` to completion on a fresh system of the given kind and
// returns the measured window (excluding one warm-up pass). A non-empty
// `trace_path` arms the causal tracer for the run and exports the Chrome
// trace plus the request-tree report (see bench/lib/trace_export.h);
// tracing charges no simulated cycles, so the window is unchanged.
WorkloadResult RunOnWpos(Workload workload, const std::string& trace_path = std::string());
WorkloadResult RunOnMono(Workload workload);

}  // namespace bench

#endif  // BENCH_LIB_WORKLOADS_H_
