#include "bench/lib/workloads.h"

#include <cstring>

#include "bench/lib/trace_export.h"
#include "src/base/log.h"
#include "src/base/rng.h"

namespace bench {

namespace {
// Application compute between system interactions, sized so the file
// workloads are dominated by service interaction (as the paper's were) and
// the graphics workloads by user-level work.
constexpr uint64_t kLightCompute = 1200;
constexpr uint64_t kFrameCompute = 20'000;
}  // namespace

void FileIntensive1(mk::Env& env, Os2ApiBase& api) {
  // IBM Works document processing: create, write, re-read, list, delete.
  char block[512];
  std::memset(block, 'w', sizeof(block));
  WPOS_CHECK(api.Mkdir(env, "/works") == base::Status::kOk ||
             api.Mkdir(env, "/works") == base::Status::kAlreadyExists);
  for (int doc = 0; doc < 12; ++doc) {
    const std::string path = "/works/doc" + std::to_string(doc) + ".wps";
    auto h = api.Open(env, path, svc::kFsCreate | svc::kFsWrite);
    WPOS_CHECK(h.ok());
    // Write an 8 KB document in small pieces (word processors save often).
    for (uint64_t off = 0; off < 8 * 1024; off += sizeof(block)) {
      WPOS_CHECK(api.Write(env, *h, off, block, sizeof(block)).ok());
      env.Compute(kLightCompute);
    }
    // Re-read for pagination.
    for (uint64_t off = 0; off < 8 * 1024; off += sizeof(block)) {
      WPOS_CHECK(api.Read(env, *h, off, block, sizeof(block)).ok());
      env.Compute(kLightCompute);
    }
    WPOS_CHECK(api.Close(env, *h) == base::Status::kOk);
    // Directory refresh after each save.
    WPOS_CHECK(api.DirCount(env, "/works").ok());
  }
  // Cleanup pass (temp file behaviour).
  for (int doc = 0; doc < 12; doc += 2) {
    WPOS_CHECK(api.Unlink(env, "/works/doc" + std::to_string(doc) + ".wps") ==
               base::Status::kOk);
  }
}

void FileIntensive2(mk::Env& env, Os2ApiBase& api) {
  // IBM Works ToDo: one record file, many small in-place updates.
  constexpr uint32_t kRecord = 128;
  constexpr int kRecords = 64;
  auto h = api.Open(env, "/todo.db", svc::kFsCreate | svc::kFsWrite);
  WPOS_CHECK(h.ok());
  char record[kRecord];
  std::memset(record, 't', sizeof(record));
  for (int i = 0; i < kRecords; ++i) {
    WPOS_CHECK(api.Write(env, *h, static_cast<uint64_t>(i) * kRecord, record, kRecord).ok());
  }
  base::Rng rng(1234);
  for (int pass = 0; pass < 6; ++pass) {
    for (int i = 0; i < kRecords; ++i) {
      const uint64_t slot = rng.NextBelow(kRecords) * kRecord;
      WPOS_CHECK(api.Read(env, *h, slot, record, kRecord).ok());
      env.Compute(kLightCompute);
      record[0] = static_cast<char>(pass);
      WPOS_CHECK(api.Write(env, *h, slot, record, kRecord).ok());
    }
  }
  WPOS_CHECK(api.Close(env, *h) == base::Status::kOk);
}

namespace {
void GraphicsWorkload(mk::Env& env, Os2ApiBase& api, int frames, int fills_per_frame,
                      int blits_per_frame) {
  auto hwnd = api.WinCreate(env, 10, 10, 320, 240);
  WPOS_CHECK(hwnd.ok());
  base::Rng rng(99);
  for (int frame = 0; frame < frames; ++frame) {
    env.Compute(kFrameCompute);  // game logic
    for (int i = 0; i < fills_per_frame; ++i) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(256));
      const uint32_t y = static_cast<uint32_t>(rng.NextBelow(200));
      WPOS_CHECK(api.FillRect(env, *hwnd, x, y, 48, 32, static_cast<uint8_t>(i)) ==
                 base::Status::kOk);
    }
    for (int i = 0; i < blits_per_frame; ++i) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(200));
      WPOS_CHECK(api.BitBlt(env, *hwnd, x, 0, 64, 48) == base::Status::kOk);
    }
  }
}
}  // namespace

void GraphicsLow(mk::Env& env, Os2ApiBase& api) { GraphicsWorkload(env, api, 20, 2, 1); }
void GraphicsMedium(mk::Env& env, Os2ApiBase& api) { GraphicsWorkload(env, api, 20, 6, 3); }
void GraphicsHigh(mk::Env& env, Os2ApiBase& api) { GraphicsWorkload(env, api, 20, 16, 8); }

namespace {
void PmTaskingWorkload(mk::Env& env, Os2ApiBase& api, int windows, int volleys,
                       int switches_per_volley) {
  std::vector<uint32_t> hwnds;
  for (int i = 0; i < windows; ++i) {
    auto hwnd = api.WinCreate(env, static_cast<uint32_t>(10 + i * 15),
                              static_cast<uint32_t>(10 + i * 10), 120, 90);
    WPOS_CHECK(hwnd.ok());
    hwnds.push_back(*hwnd);
  }
  for (int v = 0; v < volleys; ++v) {
    // Message ping-pong around the ring of windows.
    for (size_t i = 0; i < hwnds.size(); ++i) {
      WPOS_CHECK(api.WinPost(env, hwnds[(i + 1) % hwnds.size()], 0x400 + v, v, 0) ==
                 base::Status::kOk);
    }
    for (size_t i = 0; i < hwnds.size(); ++i) {
      WPOS_CHECK(api.WinGet(env, hwnds[i]).ok());
      env.Compute(kLightCompute);
    }
    for (int s = 0; s < switches_per_volley; ++s) {
      WPOS_CHECK(api.WinSwitch(env, hwnds[(v + s) % hwnds.size()]) == base::Status::kOk);
    }
  }
}
}  // namespace

void PmTaskingMedium(mk::Env& env, Os2ApiBase& api) { PmTaskingWorkload(env, api, 2, 30, 1); }
void PmTaskingHigh(mk::Env& env, Os2ApiBase& api) { PmTaskingWorkload(env, api, 6, 30, 3); }

const std::vector<NamedWorkload>& Table1Workloads() {
  static const std::vector<NamedWorkload> kWorkloads = {
      {"File Intensive 1", "IBM Works Applications", &FileIntensive1, 2.96},
      {"File Intensive 2", "IBM Works ToDo", &FileIntensive2, 2.97},
      {"Graphics Low", "Klondike", &GraphicsLow, 0.91},
      {"Graphics Medium", "Klondike", &GraphicsMedium, 0.87},
      {"Graphics High", "Klondike", &GraphicsHigh, 0.71},
      {"PM Tasking Medium", "Swp32", &PmTaskingMedium, 0.82},
      {"PM Tasking High", "Wind32", &PmTaskingHigh, 1.02},
  };
  return kWorkloads;
}

WorkloadResult RunOnWpos(Workload workload, const std::string& trace_path) {
  WposSystem system;
  ArmTrace(system.kernel(), trace_path);
  WorkloadResult result;
  system.RunApp([&](mk::Env& env) {
    workload(env, *system.MakeApi());  // warm pass: caches, name lookups, FS metadata
    const hw::CpuCounters c0 = system.kernel().Counters();
    workload(env, *system.MakeApi());
    const hw::CpuCounters delta = system.kernel().Counters() - c0;
    result.cycles = delta.cycles;
    result.instructions = delta.instructions;
    result.seconds =
        static_cast<double>(system.kernel().cpu().CyclesToNs(delta.cycles)) * 1e-9;
  });
  ExportTrace(system.kernel(), trace_path);
  return result;
}

WorkloadResult RunOnMono(Workload workload) {
  MonoSystem system;
  WorkloadResult result;
  system.RunApp([&](mk::Env& env) {
    workload(env, *system.MakeApi());
    const hw::CpuCounters c0 = system.kernel().Counters();
    workload(env, *system.MakeApi());
    const hw::CpuCounters delta = system.kernel().Counters() - c0;
    result.cycles = delta.cycles;
    result.instructions = delta.instructions;
    result.seconds =
        static_cast<double>(system.kernel().cpu().CyclesToNs(delta.cycles)) * 1e-9;
  });
  return result;
}

}  // namespace bench
