// System assemblies used by the benchmarks: the full multi-server Workplace
// OS stack and the monolithic comparator, both on the same simulated
// hardware, plus the Table 1 workload suite running against an abstract
// OS/2-ish API so identical programs drive both systems.
#ifndef BENCH_LIB_SYSTEMS_H_
#define BENCH_LIB_SYSTEMS_H_

#include <functional>
#include <memory>
#include <string>

#include "src/baseline/monolithic.h"
#include "src/drv/disk_driver.h"
#include "src/drv/fb_driver.h"
#include "src/drv/resource_manager.h"
#include "src/hw/framebuffer.h"
#include "src/mk/kernel.h"
#include "src/mks/naming/name_server.h"
#include "src/mks/pager/default_pager.h"
#include "src/pers/os2/os2.h"
#include "src/pers/os2/pm.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/inode_fs.h"

namespace bench {

// The OS/2-visible API surface the workloads program against.
class Os2ApiBase {
 public:
  virtual ~Os2ApiBase() = default;

  virtual base::Result<uint64_t> Open(mk::Env& env, const std::string& path, uint32_t flags) = 0;
  virtual base::Status Close(mk::Env& env, uint64_t handle) = 0;
  virtual base::Result<uint32_t> Read(mk::Env& env, uint64_t h, uint64_t off, void* out,
                                      uint32_t len) = 0;
  virtual base::Result<uint32_t> Write(mk::Env& env, uint64_t h, uint64_t off, const void* data,
                                       uint32_t len) = 0;
  virtual base::Status Mkdir(mk::Env& env, const std::string& path) = 0;
  virtual base::Status Unlink(mk::Env& env, const std::string& path) = 0;
  virtual base::Result<size_t> DirCount(mk::Env& env, const std::string& path) = 0;

  virtual base::Result<uint32_t> WinCreate(mk::Env& env, uint32_t x, uint32_t y, uint32_t w,
                                           uint32_t h) = 0;
  virtual base::Status WinPost(mk::Env& env, uint32_t hwnd, uint32_t msg, uint32_t p1,
                               uint32_t p2) = 0;
  // Blocks for the next message; returns msg id.
  virtual base::Result<uint32_t> WinGet(mk::Env& env, uint32_t hwnd) = 0;
  virtual base::Status FillRect(mk::Env& env, uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                                uint32_t h, uint8_t color) = 0;
  virtual base::Status BitBlt(mk::Env& env, uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                              uint32_t h) = 0;
  virtual base::Status WinSwitch(mk::Env& env, uint32_t hwnd) = 0;
};

// Full Workplace OS: microkernel + microkernel services + drivers + shared
// services + OS/2 personality. The paper's PowerPC box: 64 MB.
class WposSystem {
 public:
  WposSystem();
  ~WposSystem();

  mk::Kernel& kernel() { return *kernel_; }
  hw::Machine& machine() { return *machine_; }
  pers::Os2Process& process() { return *process_; }
  pers::PmSession& pm() { return *pm_session_; }
  svc::FileServer& file_server() { return *file_server_; }
  mks::NameServer& name_server() { return *name_server_; }

  // Runs `body` as the OS/2 application's main thread and drives the machine
  // to completion. Returns the count of threads still blocked (servers
  // normally remain parked; they are excluded).
  void RunApp(std::function<void(mk::Env&)> body);
  // Builds the Os2ApiBase view over this system's personality.
  std::unique_ptr<Os2ApiBase> MakeApi();

 private:
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  hw::Disk* disk_ = nullptr;
  hw::Framebuffer* fb_dev_ = nullptr;
  std::unique_ptr<drv::ResourceManager> rm_;
  std::unique_ptr<drv::DiskDriver> disk_driver_;
  std::unique_ptr<drv::RpcBlockStore> block_store_;
  std::unique_ptr<drv::FbDriver> fb_driver_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::HpfsFs> hpfs_;
  std::unique_ptr<svc::FileServer> file_server_;
  std::unique_ptr<mks::NameServer> name_server_;
  std::unique_ptr<mks::DefaultPager> pager_;
  std::unique_ptr<pers::Os2Server> os2_server_;
  std::unique_ptr<pers::Os2Process> process_;
  std::unique_ptr<pers::PmDesktop> desktop_;
  std::unique_ptr<pers::PmSession> pm_session_;
  mk::Task* fs_task_ = nullptr;
  bool formatted_ = false;
};

// Monolithic OS/2 comparator. The paper's Pentium box: 16 MB.
class MonoSystem {
 public:
  MonoSystem();
  ~MonoSystem();

  mk::Kernel& kernel() { return *kernel_; }
  hw::Machine& machine() { return *machine_; }
  baseline::MonolithicOs& os() { return *os_; }

  void RunApp(std::function<void(mk::Env&)> body);
  std::unique_ptr<Os2ApiBase> MakeApi();
  mk::Task& app_task() { return *app_task_; }
  hw::VirtAddr vram() const { return vram_; }

 private:
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  hw::Disk* disk_ = nullptr;
  hw::Framebuffer* fb_dev_ = nullptr;
  std::unique_ptr<baseline::KernelDiskStore> store_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::HpfsFs> hpfs_;
  std::unique_ptr<baseline::MonolithicOs> os_;
  mk::Task* app_task_ = nullptr;
  hw::VirtAddr vram_ = 0;
  bool formatted_ = false;
};

}  // namespace bench

#endif  // BENCH_LIB_SYSTEMS_H_
