// Machine-readable bench output: every bench_* binary accepts
// `--json <path>` and writes a {metric: {paper, measured, ratio}} object so
// CI and EXPERIMENTS.md comparisons can diff runs without scraping stdout.
#ifndef BENCH_LIB_JSON_REPORT_H_
#define BENCH_LIB_JSON_REPORT_H_

#include <map>
#include <string>

namespace bench {

class JsonReport {
 public:
  // `paper` is the value the source paper reports for this metric; pass 0
  // when the paper gives no number (the ratio is then omitted).
  void Add(const std::string& name, double measured, double paper = 0.0);

  // Deterministic (sorted keys, fixed precision) JSON object.
  std::string ToJson() const;
  bool WriteFile(const std::string& path) const;

  bool empty() const { return rows_.empty(); }

 private:
  struct Row {
    double measured = 0.0;
    double paper = 0.0;
  };
  std::map<std::string, Row> rows_;
};

// Removes `flag <value>` or `flag=<value>` from argv — before
// benchmark::Initialize sees and rejects it — and returns the value, or ""
// when the flag is absent.
std::string ExtractFlag(int* argc, char** argv, const std::string& flag);

inline std::string ExtractJsonPath(int* argc, char** argv) {
  return ExtractFlag(argc, argv, "--json");
}

}  // namespace bench

#endif  // BENCH_LIB_JSON_REPORT_H_
