// Reproduces Table 1: "OS/2 Performance Comparisons" — the ratio of
// WPOS-OS/2 elapsed time to monolithic-OS/2 elapsed time for the seven
// application workloads, plus the overall (geometric-mean) ratio.
//
// Paper shape to reproduce: file-intensive ≈ 3x slower on the microkernel
// system (RPC to the file server and driver), graphics ≈ 0.7-0.9 (user-level
// shared libraries drive the framebuffer directly, without the monolithic
// system's 16-bit GRE layer), PM tasking ≈ 0.8-1.0, overall ≈ 1.2.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "bench/lib/workloads.h"

namespace {

void PrintTable1(bench::JsonReport* report, const std::string& trace_path) {
  std::printf("\n=== Table 1: OS/2 Performance Comparisons ===\n");
  std::printf("%-20s %-24s %14s %14s %10s %10s\n", "Test", "Application Content",
              "WPOS (ms)", "OS/2 (ms)", "ratio", "paper");
  double log_sum = 0;
  double paper_log_sum = 0;
  bool first = true;
  for (const bench::NamedWorkload& w : bench::Table1Workloads()) {
    // `--trace` captures the first (file-intensive) row: the one whose
    // DosOpen/DosRead requests hop personality -> FS server -> driver.
    const bench::WorkloadResult wpos =
        bench::RunOnWpos(w.fn, first ? trace_path : std::string());
    first = false;
    const bench::WorkloadResult mono = bench::RunOnMono(w.fn);
    const double ratio = wpos.seconds / mono.seconds;
    log_sum += std::log(ratio);
    paper_log_sum += std::log(w.paper_ratio);
    std::printf("%-20s %-24s %14.2f %14.2f %10.2f %10.2f\n", w.name, w.content,
                wpos.seconds * 1e3, mono.seconds * 1e3, ratio, w.paper_ratio);
    report->Add(std::string(w.name) + ".ratio", ratio, w.paper_ratio);
  }
  const size_t n = bench::Table1Workloads().size();
  const double geomean = std::exp(log_sum / static_cast<double>(n));
  const double paper_geomean = std::exp(paper_log_sum / static_cast<double>(n));
  std::printf("%-20s %-24s %14s %14s %10.2f %10.2f\n", "Overall", "(geometric mean)", "", "",
              geomean, paper_geomean);
  report->Add("overall.geomean_ratio", geomean, paper_geomean);
  std::printf("ratio = WPOS elapsed / monolithic elapsed; >1 means the multi-server system"
              " is slower\n\n");
}

void BM_Workload(benchmark::State& state, bench::Workload fn, bool wpos) {
  for (auto _ : state) {
    const bench::WorkloadResult r = wpos ? bench::RunOnWpos(fn) : bench::RunOnMono(fn);
    state.SetIterationTime(r.seconds);  // simulated time
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
    state.counters["sim_instructions"] = static_cast<double>(r.instructions);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  PrintTable1(&report, trace_path);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  for (const bench::NamedWorkload& w : bench::Table1Workloads()) {
    benchmark::RegisterBenchmark((std::string("wpos/") + w.name).c_str(), &BM_Workload, w.fn,
                                 true)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark((std::string("mono/") + w.name).c_str(), &BM_Workload, w.fn,
                                 false)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
