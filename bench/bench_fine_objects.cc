// Reproduces the fine-grained-objects evaluation: "having a very large
// number of virtual method calls slowed the system down" and the wrappers
// "forced ... to maintain state". Two ablations:
//   1. OODDM TDiskDrive (deep hierarchy, many short virtuals) vs the coarse
//      in-kernel driver, same device programming.
//   2. The fine-grained network stack (+ stateful kernel wrappers) vs the
//      coarse stack, same packets.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/drv/oo/ooddm.h"
#include "src/hw/machine.h"
#include "src/svc/net/stack.h"

namespace {

struct Cost {
  double instructions = 0;
  double cycles = 0;
  double virtual_calls = 0;
};

constexpr int kOps = 200;

template <typename Fn>
Cost Measure(mk::Kernel& kernel, Fn&& op, int warmup = 10) {
  for (int i = 0; i < warmup; ++i) {
    op();
  }
  const hw::CpuCounters c0 = kernel.Counters();
  for (int i = 0; i < kOps; ++i) {
    op();
  }
  const hw::CpuCounters d = kernel.Counters() - c0;
  return {static_cast<double>(d.instructions) / kOps, static_cast<double>(d.cycles) / kOps, 0};
}

void RunDriverAblation(Cost* fine, Cost* coarse, double* fine_virtuals,
                       const std::string& trace_path = std::string()) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  bench::ArmTrace(kernel, trace_path);
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(std::make_unique<hw::Disk>("d", 3)));
  auto dma = machine.mem().AllocContiguous(1);
  mk::Task* task = kernel.CreateTask("driver-bench");
  kernel.CreateThread(task, "main", [&](mk::Env& env) {
    drv::TDiskDrive fine_drv(kernel, disk, *dma);
    drv::CoarseDiskDriver coarse_drv(kernel, disk, *dma);
    std::vector<uint8_t> buf(hw::Disk::kSectorSize);
    const uint64_t v0 = fine_drv.virtual_calls();
    *fine = Measure(kernel, [&] { (void)fine_drv.ReadBlocks(env, 1, 1, buf.data()); });
    *fine_virtuals = static_cast<double>(fine_drv.virtual_calls() - v0) / (kOps + 10);
    *coarse = Measure(kernel, [&] { (void)coarse_drv.ReadBlocks(env, 1, 1, buf.data()); });
  });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
}

void RunStackAblation(Cost* fine, Cost* coarse) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  mk::Task* task = kernel.CreateTask("stack-bench");
  kernel.CreateThread(task, "main", [&](mk::Env& env) {
    svc::FineStack fine_stack(kernel);
    svc::CoarseStack coarse_stack(kernel);
    svc::Datagram d;
    d.dst_port = 7;
    d.payload.assign(512, 0xab);
    svc::Datagram out;
    auto pump = [&](svc::StackEngine& engine) {
      auto frame = engine.Encapsulate(env, d);
      (void)engine.Decapsulate(env, frame.data(), static_cast<uint32_t>(frame.size()), &out);
    };
    *fine = Measure(kernel, [&] { pump(fine_stack); });
    *coarse = Measure(kernel, [&] { pump(coarse_stack); });
  });
  kernel.Run();
}

void PrintAblation(bench::JsonReport* report, const std::string& trace_path) {
  Cost fine_drv, coarse_drv, fine_net, coarse_net;
  double fine_virtuals = 0;
  // `--trace` captures the driver ablation's run (OODDM vs coarse driver).
  RunDriverAblation(&fine_drv, &coarse_drv, &fine_virtuals, trace_path);
  RunStackAblation(&fine_net, &coarse_net);
  report->Add("disk.instr_ratio", fine_drv.instructions / coarse_drv.instructions);
  report->Add("disk.cycle_ratio", fine_drv.cycles / coarse_drv.cycles);
  report->Add("disk.virtual_calls_per_op", fine_virtuals);
  report->Add("net.instr_ratio", fine_net.instructions / coarse_net.instructions);
  report->Add("net.cycle_ratio", fine_net.cycles / coarse_net.cycles);
  std::printf("\n=== Fine-grained objects vs coarse objects ===\n");
  std::printf("%-28s %14s %14s %10s\n", "(per operation)", "fine-grained", "coarse", "ratio");
  std::printf("%-28s %14.0f %14.0f %10.2f\n", "disk driver: instructions", fine_drv.instructions,
              coarse_drv.instructions, fine_drv.instructions / coarse_drv.instructions);
  std::printf("%-28s %14.0f %14.0f %10.2f   (device + data movement included)\n",
              "disk driver: cycles", fine_drv.cycles, coarse_drv.cycles,
              fine_drv.cycles / coarse_drv.cycles);
  std::printf("%-28s %14.0f   (control-path overhead added by the object machinery)\n",
              "disk driver: instr delta", fine_drv.instructions - coarse_drv.instructions);
  std::printf("%-28s %14.1f %14s\n", "disk driver: virtual calls", fine_virtuals, "~0");
  std::printf("%-28s %14.0f %14.0f %10.2f\n", "net stack: instructions", fine_net.instructions,
              coarse_net.instructions, fine_net.instructions / coarse_net.instructions);
  std::printf("%-28s %14.0f %14.0f %10.2f\n", "net stack: cycles", fine_net.cycles,
              coarse_net.cycles, fine_net.cycles / coarse_net.cycles);
  std::printf("paper: fine-grained objects \"exacerbate the performance problems\" and\n"
              "\"increase the complexity\"; MK++-style coarse objects are the recommendation.\n\n");
}

void BM_FineDriver(benchmark::State& state) {
  Cost fine, coarse;
  double virtuals;
  RunDriverAblation(&fine, &coarse, &virtuals);
  for (auto _ : state) {
    state.SetIterationTime(fine.cycles / 133e6);
    state.counters["fine_instr"] = fine.instructions;
    state.counters["coarse_instr"] = coarse.instructions;
  }
}
BENCHMARK(BM_FineDriver)->UseManualTime()->Iterations(1);

void BM_FineStack(benchmark::State& state) {
  Cost fine, coarse;
  RunStackAblation(&fine, &coarse);
  for (auto _ : state) {
    state.SetIterationTime(fine.cycles / 133e6);
    state.counters["fine_instr"] = fine.instructions;
    state.counters["coarse_instr"] = coarse.instructions;
  }
}
BENCHMARK(BM_FineStack)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  PrintAblation(&report, trace_path);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
