// Reproduces the conclusion's architectural claim: "operating systems whose
// paradigm is message passing and context switching, especially address
// space switching, are a poor match for the characteristics of today's
// processing engines which build up and maintain state internally as they
// execute."
//
// Two threads ping-pong through kernel semaphores, each touching a working
// set of W bytes between switches. Same-task switches keep the TLB; cross-
// task switches flush it and evict each other's cache state — the cost per
// switch grows with the working set that must be rebuilt.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"

namespace {

constexpr int kVolleys = 300;
const uint64_t kWorkingSets[] = {0, 2048, 8192, 32768};

struct Cost {
  double cycles_per_switch = 0;
  double tlb_misses_per_switch = 0;
  double cache_misses_per_switch = 0;
};

Cost Measure(bool separate_tasks, uint64_t working_set,
             const std::string& trace_path = std::string()) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  bench::ArmTrace(kernel, trace_path);
  mk::Task* task_a = kernel.CreateTask("a");
  mk::Task* task_b = separate_tasks ? kernel.CreateTask("b") : task_a;
  auto sem_a = kernel.SemCreate(0);
  auto sem_b = kernel.SemCreate(0);
  WPOS_CHECK(sem_a.ok() && sem_b.ok());
  Cost cost;

  auto body = [&](mk::Task* task, uint32_t wait_sem, uint32_t post_sem, bool measuring) {
    return [&kernel, task, wait_sem, post_sem, working_set, measuring, &cost](mk::Env& env) {
      hw::VirtAddr ws = 0;
      if (working_set > 0) {
        auto mem = kernel.VmAllocate(*task, hw::PageRound(working_set));
        WPOS_CHECK(mem.ok());
        ws = *mem;
        WPOS_CHECK(env.Touch(ws, working_set, true) == base::Status::kOk);
      }
      // Warmup volleys.
      for (int i = 0; i < 30; ++i) {
        WPOS_CHECK(kernel.SemWait(wait_sem) == base::Status::kOk);
        if (working_set > 0) {
          (void)env.Touch(ws, working_set, false);
        }
        WPOS_CHECK(kernel.SemSignal(post_sem) == base::Status::kOk);
      }
      hw::CpuCounters c0;
      if (measuring) {
        c0 = kernel.Counters();
      }
      for (int i = 0; i < kVolleys; ++i) {
        WPOS_CHECK(kernel.SemWait(wait_sem) == base::Status::kOk);
        if (working_set > 0) {
          (void)env.Touch(ws, working_set, false);
        }
        WPOS_CHECK(kernel.SemSignal(post_sem) == base::Status::kOk);
      }
      if (measuring) {
        const hw::CpuCounters d = kernel.Counters() - c0;
        // Each volley is two switches (there and back).
        cost.cycles_per_switch = static_cast<double>(d.cycles) / (2.0 * kVolleys);
        cost.tlb_misses_per_switch = static_cast<double>(d.tlb_misses) / (2.0 * kVolleys);
        cost.cache_misses_per_switch =
            static_cast<double>(d.icache_misses + d.dcache_misses) / (2.0 * kVolleys);
      }
    };
  };
  kernel.CreateThread(task_a, "ping", body(task_a, *sem_a, *sem_b, true));
  kernel.CreateThread(task_b, "pong", body(task_b, *sem_b, *sem_a, false));
  // Kick off the volley.
  kernel.CreateThread(task_a, "starter",
                      [&](mk::Env& env) { WPOS_CHECK(kernel.SemSignal(*sem_a) == base::Status::kOk); });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
  return cost;
}

void PrintTable(bench::JsonReport* report, const std::string& trace_path) {
  std::printf("\n=== Context/address-space switch cost vs working set ===\n");
  std::printf("%12s | %12s %8s %8s | %12s %8s %8s | %7s\n", "working set", "same-task cyc",
              "tlb", "cache", "cross-task cyc", "tlb", "cache", "penalty");
  bool first = true;
  for (uint64_t ws : kWorkingSets) {
    // `--trace` captures the first cross-task run of the sweep.
    const Cost same = Measure(false, ws);
    const Cost cross = Measure(true, ws, first ? trace_path : std::string());
    first = false;
    std::printf("%10llu B | %12.0f %8.1f %8.1f | %12.0f %8.1f %8.1f | %6.2fx\n",
                static_cast<unsigned long long>(ws), same.cycles_per_switch,
                same.tlb_misses_per_switch, same.cache_misses_per_switch,
                cross.cycles_per_switch, cross.tlb_misses_per_switch,
                cross.cache_misses_per_switch,
                cross.cycles_per_switch / same.cycles_per_switch);
    const std::string prefix = "ws" + std::to_string(ws);
    report->Add(prefix + ".same_task_cycles", same.cycles_per_switch);
    report->Add(prefix + ".cross_task_cycles", cross.cycles_per_switch);
    report->Add(prefix + ".cross_task_penalty",
                cross.cycles_per_switch / same.cycles_per_switch);
  }
  std::printf("paper: address-space switching discards the state modern processors build\n"
              "up; the penalty grows with the working set rebuilt after each switch.\n\n");
}

void BM_Switch(benchmark::State& state) {
  const bool cross = state.range(0) != 0;
  const uint64_t ws = static_cast<uint64_t>(state.range(1));
  for (auto _ : state) {
    const Cost c = Measure(cross, ws);
    state.SetIterationTime(c.cycles_per_switch * 2 * kVolleys / 133e6);
    state.counters["cycles_per_switch"] = c.cycles_per_switch;
    state.counters["tlb_per_switch"] = c.tlb_misses_per_switch;
  }
}
BENCHMARK(BM_Switch)
    ->Args({0, 8192})
    ->Args({1, 8192})
    ->Args({1, 32768})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  PrintTable(&report, trace_path);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
