// Ablations of the design choices DESIGN.md calls out:
//   1. Direct thread handoff in the RPC rendezvous (part of the IBM rework)
//      versus waking the peer through the ordinary ready queue.
//   2. RPC cost versus I/D-cache size — the conclusion's architecture claim
//      read forward: the bigger the on-chip state, the more an RPC's
//      footprint and address-space switches cost relative to a trap.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "src/drv/kernel_nic.h"
#include "src/drv/nic_driver.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"

namespace {

constexpr int kWarmup = 100;
constexpr int kOps = 500;

double RpcCyclesPerOp(bool handoff, uint32_t cache_kb, int background_threads = 0) {
  hw::MachineConfig config;
  config.ram_bytes = 16 * 1024 * 1024;
  config.cpu.icache.size_bytes = cache_kb * 1024;
  config.cpu.dcache.size_bytes = cache_kb * 1024;
  hw::Machine machine(config);
  mk::Kernel kernel(&machine);
  kernel.scheduler().handoff_enabled = handoff;
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  // Background load: without direct handoff, the woken RPC peer queues
  // behind these at every rendezvous.
  bool stop_background = false;
  for (int i = 0; i < background_threads; ++i) {
    mk::Task* bg = kernel.CreateTask("bg" + std::to_string(i));
    kernel.CreateThread(bg, "spin", [&kernel, &stop_background](mk::Env& env) {
      while (!stop_background) {
        env.Compute(800);
        env.Yield();
      }
    });
  }
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  kernel.CreateThread(server_task, "s", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    while (req.ok()) {
      req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, recv, buf, sizeof(buf));
    }
  });
  double cycles = 0;
  kernel.CreateThread(client_task, "c", [&, send = *send](mk::Env& env) {
    char payload[32] = {};
    char reply[32];
    for (int i = 0; i < kWarmup; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    const uint64_t c0 = kernel.cpu().cycles();
    for (int i = 0; i < kOps; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kOps;
    kernel.PortDestroy(*server_task, *recv);
    stop_background = true;
  });
  kernel.Run();
  return cycles;
}

// Frame echo cost: user-level driver task (RPC + reflected interrupts) vs
// the BSD-style in-kernel driver (trap + in-kernel interrupt handler).
double FrameEchoCycles(bool user_level) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* nic = static_cast<hw::Nic*>(machine.AddDevice(std::make_unique<hw::Nic>("n", 5)));
  mk::Task* app = kernel.CreateTask("app");
  double cycles = 0;
  constexpr int kFrames = 60;
  if (user_level) {
    mk::Task* drv_task = kernel.CreateTask("nic-driver");
    auto* driver = new drv::NicDriver(kernel, drv_task, nic, nullptr);
    const mk::PortName service = driver->GrantTo(*app);
    kernel.CreateThread(app, "a", [&, service](mk::Env& env) {
      drv::NicClient client(service);
      uint8_t frame[256] = {};
      uint8_t in[2048];
      for (int i = 0; i < 10; ++i) {
        (void)client.Send(env, frame, sizeof(frame));
        (void)client.Receive(env, in, sizeof(in));
      }
      const uint64_t c0 = kernel.cpu().cycles();
      for (int i = 0; i < kFrames; ++i) {
        (void)client.Send(env, frame, sizeof(frame));
        (void)client.Receive(env, in, sizeof(in));
      }
      cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kFrames;
      driver->Stop();
      kernel.TerminateTask(drv_task);
    });
  } else {
    auto* driver = new drv::KernelNicDriver(kernel, nic);
    kernel.CreateThread(app, "a", [&](mk::Env& env) {
      uint8_t frame[256] = {};
      uint8_t in[2048];
      for (int i = 0; i < 10; ++i) {
        (void)driver->Send(env, frame, sizeof(frame));
        (void)driver->Receive(env, in, sizeof(in));
      }
      const uint64_t c0 = kernel.cpu().cycles();
      for (int i = 0; i < kFrames; ++i) {
        (void)driver->Send(env, frame, sizeof(frame));
        (void)driver->Receive(env, in, sizeof(in));
      }
      cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kFrames;
    });
  }
  kernel.Run();
  return cycles;
}

void PrintAblations(bench::JsonReport* report) {
  std::printf("\n=== Ablation 1: direct handoff in the RPC rendezvous ===\n");
  std::printf("%22s %14s %14s %8s\n", "", "handoff", "ready-queue", "ratio");
  for (int bg : {0, 2, 4}) {
    const double with_handoff = RpcCyclesPerOp(true, 8, bg);
    const double without = RpcCyclesPerOp(false, 8, bg);
    std::printf("%2d background threads %14.0f %14.0f %8.2f\n", bg, with_handoff, without,
                without / with_handoff);
    const std::string prefix = "handoff.bg" + std::to_string(bg);
    report->Add(prefix + ".handoff_cycles", with_handoff);
    report->Add(prefix + ".ready_queue_cycles", without);
    report->Add(prefix + ".ratio", without / with_handoff);
  }
  std::printf("under load, the woken peer queues behind ready threads unless the\n"
              "rendezvous hands the CPU over directly — the rework's latency win.\n");

  std::printf("\n=== Ablation 2: RPC cost vs cache size ===\n");
  std::printf("%10s %16s\n", "cache", "RPC cycles/op");
  for (uint32_t kb : {4u, 8u, 16u, 32u}) {
    const double cycles = RpcCyclesPerOp(true, kb);
    std::printf("%8u KB %16.0f\n", kb, cycles);
    report->Add("cache" + std::to_string(kb) + "kb.rpc_cycles", cycles);
  }
  std::printf("larger caches absorb the RPC path's footprint; on the small split\n"
              "caches of the paper's era the multi-server structure pays full price.\n");

  std::printf("\n=== Ablation 3: user-level vs in-kernel (BSD-style) NIC driver ===\n");
  const double user = FrameEchoCycles(true);
  const double in_kernel = FrameEchoCycles(false);
  std::printf("256-byte frame echo: user-level %0.f cycles, in-kernel %0.f cycles (%.2fx)\n",
              user, in_kernel, user / in_kernel);
  std::printf("why WPOS kept BSD-like in-kernel drivers for networking.\n\n");
  report->Add("nic_echo.user_level_cycles", user);
  report->Add("nic_echo.in_kernel_cycles", in_kernel);
  report->Add("nic_echo.ratio", user / in_kernel);
}

void BM_Handoff(benchmark::State& state) {
  const bool handoff = state.range(0) != 0;
  for (auto _ : state) {
    const double cycles = RpcCyclesPerOp(handoff, 8);
    state.SetIterationTime(cycles * kOps / 133e6);
    state.counters["cycles_per_op"] = cycles;
  }
}
BENCHMARK(BM_Handoff)->Arg(1)->Arg(0)->UseManualTime()->Iterations(1);

void BM_CacheSize(benchmark::State& state) {
  const uint32_t kb = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const double cycles = RpcCyclesPerOp(true, kb);
    state.SetIterationTime(cycles * kOps / 133e6);
    state.counters["cycles_per_op"] = cycles;
  }
}
BENCHMARK(BM_CacheSize)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);
  bench::JsonReport report;
  PrintAblations(&report);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
