// Ablations of the design choices DESIGN.md calls out:
//   1. Direct thread handoff in the RPC rendezvous (part of the IBM rework)
//      versus waking the peer through the ordinary ready queue.
//   2. RPC cost versus I/D-cache size — the conclusion's architecture claim
//      read forward: the bigger the on-chip state, the more an RPC's
//      footprint and address-space switches cost relative to a trap.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/drv/kernel_nic.h"
#include "src/drv/nic_driver.h"
#include "src/hw/disk.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mks/pager/default_pager.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/inode_fs.h"

namespace {

constexpr int kWarmup = 100;
constexpr int kOps = 500;

double RpcCyclesPerOp(bool handoff, uint32_t cache_kb, int background_threads = 0,
                      const std::string& trace_path = std::string()) {
  hw::MachineConfig config;
  config.ram_bytes = 16 * 1024 * 1024;
  config.cpu.icache.size_bytes = cache_kb * 1024;
  config.cpu.dcache.size_bytes = cache_kb * 1024;
  hw::Machine machine(config);
  mk::Kernel kernel(&machine);
  bench::ArmTrace(kernel, trace_path);
  kernel.scheduler().handoff_enabled = handoff;
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  // Background load: without direct handoff, the woken RPC peer queues
  // behind these at every rendezvous.
  bool stop_background = false;
  for (int i = 0; i < background_threads; ++i) {
    mk::Task* bg = kernel.CreateTask("bg" + std::to_string(i));
    kernel.CreateThread(bg, "spin", [&kernel, &stop_background](mk::Env& env) {
      while (!stop_background) {
        env.Compute(800);
        env.Yield();
      }
    });
  }
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  kernel.CreateThread(server_task, "s", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    while (req.ok()) {
      req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, recv, buf, sizeof(buf));
    }
  });
  double cycles = 0;
  kernel.CreateThread(client_task, "c", [&, send = *send](mk::Env& env) {
    char payload[32] = {};
    char reply[32];
    for (int i = 0; i < kWarmup; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    const uint64_t c0 = kernel.cpu().cycles();
    for (int i = 0; i < kOps; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kOps;
    kernel.PortDestroy(*server_task, *recv);
    stop_background = true;
  });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
  return cycles;
}

// Frame echo cost: user-level driver task (RPC + reflected interrupts) vs
// the BSD-style in-kernel driver (trap + in-kernel interrupt handler).
double FrameEchoCycles(bool user_level) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* nic = static_cast<hw::Nic*>(machine.AddDevice(std::make_unique<hw::Nic>("n", 5)));
  mk::Task* app = kernel.CreateTask("app");
  double cycles = 0;
  constexpr int kFrames = 60;
  if (user_level) {
    mk::Task* drv_task = kernel.CreateTask("nic-driver");
    auto* driver = new drv::NicDriver(kernel, drv_task, nic, nullptr);
    const mk::PortName service = driver->GrantTo(*app);
    kernel.CreateThread(app, "a", [&, service](mk::Env& env) {
      drv::NicClient client(service);
      uint8_t frame[256] = {};
      uint8_t in[2048];
      for (int i = 0; i < 10; ++i) {
        (void)client.Send(env, frame, sizeof(frame));
        (void)client.Receive(env, in, sizeof(in));
      }
      const uint64_t c0 = kernel.cpu().cycles();
      for (int i = 0; i < kFrames; ++i) {
        (void)client.Send(env, frame, sizeof(frame));
        (void)client.Receive(env, in, sizeof(in));
      }
      cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kFrames;
      driver->Stop();
      kernel.TerminateTask(drv_task);
    });
  } else {
    auto* driver = new drv::KernelNicDriver(kernel, nic);
    kernel.CreateThread(app, "a", [&](mk::Env& env) {
      uint8_t frame[256] = {};
      uint8_t in[2048];
      for (int i = 0; i < 10; ++i) {
        (void)driver->Send(env, frame, sizeof(frame));
        (void)driver->Receive(env, in, sizeof(in));
      }
      const uint64_t c0 = kernel.cpu().cycles();
      for (int i = 0; i < kFrames; ++i) {
        (void)driver->Send(env, frame, sizeof(frame));
        (void)driver->Receive(env, in, sizeof(in));
      }
      cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kFrames;
    });
  }
  kernel.Run();
  return cycles;
}

// Bulk transfer cost per byte: a client pushes `bytes` of ref data per call
// to an echo server, either through the inline copy loop (forced kCopy) or
// as an out-of-line page reference (kAuto picks OOL above the threshold).
double BulkCyclesPerByte(uint32_t bytes, mk::RpcBulkMode mode) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  constexpr int kBulkWarmup = 20;
  constexpr int kBulkOps = 100;
  kernel.CreateThread(server_task, "s", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    std::vector<uint8_t> bulk(256 * 1024);
    while (true) {
      mk::RpcRef ref;
      ref.recv_buf = bulk.data();
      ref.recv_cap = static_cast<uint32_t>(bulk.size());
      auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
      if (!req.ok()) {
        return;
      }
      env.RpcReply(req->token, buf, req->req_len);
    }
  });
  double cycles = 0;
  kernel.CreateThread(client_task, "c", [&, send = *send](mk::Env& env) {
    std::vector<uint8_t> data(bytes, 0x5a);
    uint32_t hdr = 1;
    uint32_t rep = 0;
    auto call = [&] {
      mk::RpcRef ref;
      ref.send_data = data.data();
      ref.send_len = bytes;
      ref.send_mode = mode;
      (void)env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref);
    };
    for (int i = 0; i < kBulkWarmup; ++i) {
      call();
    }
    const uint64_t c0 = kernel.cpu().cycles();
    for (int i = 0; i < kBulkOps; ++i) {
      call();
    }
    cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kBulkOps / bytes;
    kernel.PortDestroy(*server_task, *recv);
  });
  kernel.Run();
  return cycles;
}

// Scatter I/O amortization: move `extents` x `extent_bytes` either as one
// batched call (one trap, one combined — and OOL-eligible — ref payload) or
// as `extents` separate calls. Returns cycles per extent.
double ScatterCyclesPerExtent(uint32_t extents, uint32_t extent_bytes, bool batched) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  constexpr int kRounds = 60;
  kernel.CreateThread(server_task, "s", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    std::vector<uint8_t> bulk(256 * 1024);
    while (true) {
      mk::RpcRef ref;
      ref.recv_buf = bulk.data();
      ref.recv_cap = static_cast<uint32_t>(bulk.size());
      auto req = env.RpcReceive(recv, buf, sizeof(buf), &ref);
      if (!req.ok()) {
        return;
      }
      env.RpcReply(req->token, buf, req->req_len);
    }
  });
  double cycles = 0;
  kernel.CreateThread(client_task, "c", [&, send = *send](mk::Env& env) {
    std::vector<uint8_t> data(extents * extent_bytes, 0x5a);
    uint32_t hdr = 1;
    uint32_t rep = 0;
    auto round = [&] {
      if (batched) {
        mk::RpcRef ref;
        ref.send_data = data.data();
        ref.send_len = extents * extent_bytes;
        (void)env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref);
      } else {
        for (uint32_t e = 0; e < extents; ++e) {
          mk::RpcRef ref;
          ref.send_data = data.data() + e * extent_bytes;
          ref.send_len = extent_bytes;
          (void)env.RpcCall(send, &hdr, sizeof(hdr), &rep, sizeof(rep), nullptr, &ref);
        }
      }
    };
    for (int i = 0; i < 10; ++i) {
      round();
    }
    const uint64_t c0 = kernel.cpu().cycles();
    for (int i = 0; i < kRounds; ++i) {
      round();
    }
    cycles = static_cast<double>(kernel.cpu().cycles() - c0) / kRounds / extents;
    kernel.PortDestroy(*server_task, *recv);
  });
  kernel.Run();
  return cycles;
}

// Overload behaviour: a server with a fixed per-request cost, hammered by
// `clients` closed-loop callers for a fixed simulated horizon, with the RPC
// queue either unbounded (0) or admission-bounded. Shed callers back off
// briefly, as an adaptive client would. Returns goodput and tail queue-wait.
struct OverloadResult {
  double goodput_ops_per_ms = 0;
  double p99_queue_wait_cycles = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
};

OverloadResult OverloadRun(int clients, uint32_t queue_limit) {
  // Enough RAM and kernel heap for the 16x run's 64 single-thread client
  // tasks (task control blocks and page tables all live in the sim heap).
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 64 * 1024 * 1024});
  mk::KernelConfig config;
  config.kernel_heap_bytes = 32 * 1024 * 1024;
  mk::Kernel kernel(&machine, config);
  kernel.tracer().Enable();  // queue-wait attribution needs span metadata
  mk::Task* server_task = kernel.CreateTask("server");
  auto recv = kernel.PortAllocate(*server_task);
  if (queue_limit != 0) {
    WPOS_CHECK(kernel.PortSetQueueLimit(*server_task, *recv, queue_limit) == base::Status::kOk);
  }
  constexpr uint64_t kServiceCycles = 20'000;   // ~150 us/op at 133 MHz
  constexpr uint64_t kHorizonNs = 40'000'000;   // 40 simulated ms of load
  constexpr uint64_t kShedBackoffNs = 200'000;  // client backoff after a shed
  kernel.CreateThread(server_task, "s", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    while (true) {
      auto req = env.RpcReceive(recv, buf, sizeof(buf));
      if (!req.ok()) {
        return;
      }
      env.Compute(kServiceCycles);
      env.RpcReply(req->token, buf, req->req_len);
    }
  });
  OverloadResult out;
  int running = clients;
  for (int c = 0; c < clients; ++c) {
    mk::Task* task = kernel.CreateTask("c" + std::to_string(c));
    auto send = kernel.MakeSendRight(*server_task, *recv, *task);
    kernel.CreateThread(task, "c", [&, send = *send](mk::Env& env) {
      char payload[32] = {};
      char reply[32];
      // Doubling backoff, as RpcCallRobust does. On this one-CPU machine a
      // fixed short backoff would have the shed herd burn the server's own
      // cycles re-trapping into the kernel — adaptation is what keeps
      // shedding cheaper than queueing.
      uint64_t backoff = kShedBackoffNs;
      while (env.NowNs() < kHorizonNs) {
        const base::Status st = env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
        if (st == base::Status::kOk) {
          ++out.ok;
          backoff = kShedBackoffNs;
        } else if (st == base::Status::kBusy) {
          ++out.shed;
          (void)env.SleepNs(backoff);
          if (backoff < 64 * kShedBackoffNs) {
            backoff *= 2;
          }
        } else {
          return;
        }
      }
      if (--running == 0) {
        kernel.PortDestroy(*server_task, recv.value());
      }
    });
  }
  kernel.Run();
  out.goodput_ops_per_ms = static_cast<double>(out.ok) / (kHorizonNs / 1'000'000);
  out.p99_queue_wait_cycles = static_cast<double>(
      kernel.tracer().metrics().Hist("mk.rpc.queue_wait_cycles").PercentileBound(99));
  return out;
}

// File-intensive RPC traffic with and without the client-side FS cache: a
// sequential write pass, a sequential re-read pass and a handful of fstat
// probes against a file server in another task. Returns cross-server RPCs
// per file operation — the cost the cache exists to cut.
double FileIntensiveRpcsPerOp(bool cached) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(
      std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 64 * 1024})));
  mks::BackdoorBlockStore store(disk, 30'000);
  svc::BlockCache cache(kernel, &store, 1024);
  svc::HpfsFs hpfs(kernel, &cache, 65536);
  mk::Task* fs_task = kernel.CreateTask("file-server");
  svc::FileServer server(kernel, fs_task);
  WPOS_CHECK(server.AddMount("/", &hpfs) == base::Status::kOk);
  mk::Task* app = kernel.CreateTask("app");
  const mk::PortName service = server.GrantTo(*app);
  bool formatted = false;
  kernel.CreateThread(fs_task, "mkfs", [&](mk::Env& env) {
    WPOS_CHECK(hpfs.Format(env) == base::Status::kOk);
    formatted = true;
  });
  double rpcs_per_op = 0;
  kernel.CreateThread(app, "app", [&](mk::Env& env) {
    while (!formatted) {
      (void)env.SleepNs(200'000);
    }
    svc::FsClient fs(service);
    if (cached) {
      fs.EnableCache();
    }
    constexpr uint32_t kChunk = 256;
    constexpr uint32_t kChunks = 64;
    constexpr uint32_t kStats = 8;
    std::vector<uint8_t> data(kChunk, 0x5a);
    std::vector<uint8_t> back(kChunk);
    const uint64_t rpc0 = kernel.rpc_calls();
    auto h = fs.Open(env, "/intensive.dat", svc::kFsCreate | svc::kFsWrite);
    WPOS_CHECK(h.ok());
    for (uint32_t i = 0; i < kChunks; ++i) {
      WPOS_CHECK(fs.Write(env, *h, i * kChunk, data.data(), kChunk).ok());
    }
    for (uint32_t i = 0; i < kChunks; ++i) {
      WPOS_CHECK(fs.Read(env, *h, i * kChunk, back.data(), kChunk).ok());
    }
    for (uint32_t i = 0; i < kStats; ++i) {
      WPOS_CHECK(fs.Stat(env, *h).ok());
    }
    WPOS_CHECK(fs.Close(env, *h) == base::Status::kOk);
    const uint64_t ops = 2 * kChunks + kStats + 2;  // reads+writes+stats+open+close
    rpcs_per_op = static_cast<double>(kernel.rpc_calls() - rpc0) / ops;
    server.Stop();
    (void)fs.Sync(env);  // unblock the serve loop
  });
  kernel.Run();
  return rpcs_per_op;
}

// Mapped file I/O vs per-read RPCs: a sequential pass over a file served by
// another task, either as uncached fs.Read calls (one RPC per page-sized
// read) or through a mapped memory object (per-page faults the pager
// amortizes with readahead). Returns server RPCs per page-sized operation
// and cycles per byte moved.
struct MappedReadResult {
  double rpcs_per_op = 0;
  double cycles_per_byte = 0;
};

MappedReadResult MappedVsReadPass(bool mapped) {
  // 16 pages: the largest page-multiple comfortably under the inode layout's
  // per-file cap (12 direct + 128 indirect sectors at 512 B ~= 70 KB).
  constexpr uint32_t kPages = 16;
  constexpr uint64_t kFileSize = uint64_t{kPages} * hw::kPageSize;
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(
      std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 64 * 1024})));
  mks::BackdoorBlockStore store(disk, 30'000);
  svc::BlockCache cache(kernel, &store, 1024);
  svc::HpfsFs hpfs(kernel, &cache, 65536);
  mk::Task* fs_task = kernel.CreateTask("file-server");
  svc::FileServer server(kernel, fs_task);
  WPOS_CHECK(server.AddMount("/", &hpfs) == base::Status::kOk);
  server.EnableMapping();
  mk::Task* app = kernel.CreateTask("app");
  const mk::PortName service = server.GrantTo(*app);
  bool formatted = false;
  kernel.CreateThread(fs_task, "mkfs", [&](mk::Env& env) {
    WPOS_CHECK(hpfs.Format(env) == base::Status::kOk);
    formatted = true;
  });
  MappedReadResult out;
  kernel.CreateThread(app, "app", [&](mk::Env& env) {
    while (!formatted) {
      (void)env.SleepNs(200'000);
    }
    svc::FsClient fs(service);
    std::vector<uint8_t> page(hw::kPageSize, 0x5a);
    auto h = fs.Open(env, "/mapped.dat", svc::kFsCreate | svc::kFsWrite);
    WPOS_CHECK(h.ok());
    for (uint32_t i = 0; i < kPages; ++i) {
      WPOS_CHECK(fs.Write(env, *h, uint64_t{i} * hw::kPageSize, page.data(), page.size()).ok());
    }
    // The measured window is the sequential pass alone in both modes: Open is
    // outside the read() window, and the one-time map setup/teardown (export,
    // kObjectSetup, release) is outside the mapped window — a mapping is
    // long-lived state whose cost amortizes across every pass over it.
    if (mapped) {
      auto m = fs.MapObject(env, *h);
      WPOS_CHECK(m.ok());
      auto object = kernel.LookupPagedObject(m->object_id);
      WPOS_CHECK(object != nullptr);
      auto base_addr = kernel.VmMapObject(*app, object, 0, object->size(), mk::Prot::kRead,
                                          /*anywhere=*/true);
      WPOS_CHECK(base_addr.ok());
      const uint64_t rpc0 = kernel.rpc_calls();
      const uint64_t c0 = kernel.cpu().cycles();
      for (uint32_t i = 0; i < kPages; ++i) {
        WPOS_CHECK(kernel.CopyIn(*app, *base_addr + uint64_t{i} * hw::kPageSize, page.data(),
                                 page.size()) == base::Status::kOk);
      }
      out.rpcs_per_op = static_cast<double>(kernel.rpc_calls() - rpc0) / kPages;
      out.cycles_per_byte = static_cast<double>(kernel.cpu().cycles() - c0) / kFileSize;
      WPOS_CHECK(kernel.VmDeallocate(*app, *base_addr, object->size()) == base::Status::kOk);
      auto remaining = fs.UnmapObject(env, m->object_id);
      WPOS_CHECK(remaining.ok());
      if (*remaining == 0) {
        (void)kernel.ReleasePagedObject(m->object_id);
      }
    } else {
      const uint64_t rpc0 = kernel.rpc_calls();
      const uint64_t c0 = kernel.cpu().cycles();
      for (uint32_t i = 0; i < kPages; ++i) {
        WPOS_CHECK(fs.Read(env, *h, uint64_t{i} * hw::kPageSize, page.data(), page.size()).ok());
      }
      out.rpcs_per_op = static_cast<double>(kernel.rpc_calls() - rpc0) / kPages;
      out.cycles_per_byte = static_cast<double>(kernel.cpu().cycles() - c0) / kFileSize;
    }
    WPOS_CHECK(fs.Close(env, *h) == base::Status::kOk);
    server.Stop();
    (void)fs.Sync(env);  // unblock the serve loop
  });
  kernel.Run();
  return out;
}

void PrintAblations(bench::JsonReport* report, const std::string& trace_path) {
  std::printf("\n=== Ablation 1: direct handoff in the RPC rendezvous ===\n");
  std::printf("%22s %14s %14s %8s\n", "", "handoff", "ready-queue", "ratio");
  bool first = true;
  for (int bg : {0, 2, 4}) {
    // `--trace` captures the first (handoff, unloaded) rendezvous run.
    const double with_handoff = RpcCyclesPerOp(true, 8, bg, first ? trace_path : std::string());
    first = false;
    const double without = RpcCyclesPerOp(false, 8, bg);
    std::printf("%2d background threads %14.0f %14.0f %8.2f\n", bg, with_handoff, without,
                without / with_handoff);
    const std::string prefix = "handoff.bg" + std::to_string(bg);
    report->Add(prefix + ".handoff_cycles", with_handoff);
    report->Add(prefix + ".ready_queue_cycles", without);
    report->Add(prefix + ".ratio", without / with_handoff);
  }
  std::printf("under load, the woken peer queues behind ready threads unless the\n"
              "rendezvous hands the CPU over directly — the rework's latency win.\n");

  std::printf("\n=== Ablation 2: RPC cost vs cache size ===\n");
  std::printf("%10s %16s\n", "cache", "RPC cycles/op");
  for (uint32_t kb : {4u, 8u, 16u, 32u}) {
    const double cycles = RpcCyclesPerOp(true, kb);
    std::printf("%8u KB %16.0f\n", kb, cycles);
    report->Add("cache" + std::to_string(kb) + "kb.rpc_cycles", cycles);
  }
  std::printf("larger caches absorb the RPC path's footprint; on the small split\n"
              "caches of the paper's era the multi-server structure pays full price.\n");

  std::printf("\n=== Ablation 3: user-level vs in-kernel (BSD-style) NIC driver ===\n");
  const double user = FrameEchoCycles(true);
  const double in_kernel = FrameEchoCycles(false);
  std::printf("256-byte frame echo: user-level %0.f cycles, in-kernel %0.f cycles (%.2fx)\n",
              user, in_kernel, user / in_kernel);
  std::printf("why WPOS kept BSD-like in-kernel drivers for networking.\n\n");
  report->Add("nic_echo.user_level_cycles", user);
  report->Add("nic_echo.in_kernel_cycles", in_kernel);
  report->Add("nic_echo.ratio", user / in_kernel);

  std::printf("\n=== Ablation 4: bulk transfer — inline copy vs out-of-line ===\n");
  std::printf("%10s %14s %14s %8s\n", "payload", "inline c/B", "OOL c/B", "ratio");
  for (uint32_t bytes : {1024u, 4096u, 16384u, 65536u}) {
    const double inline_cpb = BulkCyclesPerByte(bytes, mk::RpcBulkMode::kCopy);
    const double ool_cpb = BulkCyclesPerByte(bytes, mk::RpcBulkMode::kAuto);
    std::printf("%8u B %14.3f %14.3f %8.2f\n", bytes, inline_cpb, ool_cpb,
                inline_cpb / ool_cpb);
    const std::string prefix = "bulk.b" + std::to_string(bytes);
    report->Add(prefix + ".inline_cycles_per_byte", inline_cpb);
    report->Add(prefix + ".ool_cycles_per_byte", ool_cpb);
    report->Add(prefix + ".ratio", inline_cpb / ool_cpb);
    if (bytes >= 4096) {
      WPOS_CHECK(ool_cpb < inline_cpb)
          << "OOL must beat the inline copy per byte at " << bytes << " B";
    }
  }
  std::printf("\"large data passed by reference\": past the threshold the per-page\n"
              "reference beats the per-byte copy loop, and the gap widens with size.\n");

  std::printf("\n=== Ablation 4b: scatter I/O — batched vs per-extent calls ===\n");
  std::printf("%10s %16s %16s %8s\n", "extents", "batched c/ext", "separate c/ext", "ratio");
  for (uint32_t extents : {4u, 8u, 16u}) {
    const double batched = ScatterCyclesPerExtent(extents, 4096, true);
    const double separate = ScatterCyclesPerExtent(extents, 4096, false);
    std::printf("%10u %16.0f %16.0f %8.2f\n", extents, batched, separate, separate / batched);
    const std::string prefix = "scatter.x" + std::to_string(extents);
    report->Add(prefix + ".batched_cycles_per_extent", batched);
    report->Add(prefix + ".separate_cycles_per_extent", separate);
    report->Add(prefix + ".ratio", separate / batched);
    WPOS_CHECK(batched < separate)
        << "batching must amortize the per-call trap cost at " << extents << " extents";
  }
  std::printf("one RPC carrying the whole extent table amortizes the trap and\n"
              "rendezvous cost the paper measured across every extent.\n");

  std::printf("\n=== Ablation 5: overload — bounded admission vs unbounded queueing ===\n");
  std::printf("%6s %12s %12s %14s %14s %8s\n", "load", "goodput/ms", "goodput/ms", "p99 wait",
              "p99 wait", "sheds");
  std::printf("%6s %12s %12s %14s %14s %8s\n", "", "(unbounded)", "(bounded)", "(unbounded)",
              "(bounded)", "");
  for (int mult : {1, 4, 16}) {
    // `mult`x the queue's depth in closed-loop clients: at 1x the bound is
    // never hit (4 callers, one in service, three queued); past that the
    // population exceeds the queue and the bounded port must shed.
    const OverloadResult unbounded = OverloadRun(4 * mult, 0);
    const OverloadResult bounded = OverloadRun(4 * mult, 4);
    std::printf("%5dx %12.1f %12.1f %14.0f %14.0f %8llu\n", mult, unbounded.goodput_ops_per_ms,
                bounded.goodput_ops_per_ms, unbounded.p99_queue_wait_cycles,
                bounded.p99_queue_wait_cycles,
                static_cast<unsigned long long>(bounded.shed));
    const std::string prefix = "overload.x" + std::to_string(mult);
    report->Add(prefix + ".unbounded.goodput_ops_per_ms", unbounded.goodput_ops_per_ms);
    report->Add(prefix + ".bounded.goodput_ops_per_ms", bounded.goodput_ops_per_ms);
    report->Add(prefix + ".unbounded.p99_queue_wait_cycles", unbounded.p99_queue_wait_cycles);
    report->Add(prefix + ".bounded.p99_queue_wait_cycles", bounded.p99_queue_wait_cycles);
    report->Add(prefix + ".bounded.sheds", static_cast<double>(bounded.shed));
    if (mult > 1) {
      WPOS_CHECK(bounded.shed > 0)
          << "a " << mult << "x overload against a 4-deep queue must shed";
      WPOS_CHECK(bounded.p99_queue_wait_cycles * 2 <= unbounded.p99_queue_wait_cycles)
          << "the bound must at least halve the queue-wait tail at " << mult << "x";
      // On one CPU every shed retry is a trap the server does not get to
      // spend serving, so goodput under shedding trails pure queueing — the
      // gate is that it must not collapse while the tail is bought.
      WPOS_CHECK(bounded.goodput_ops_per_ms >= 0.5 * unbounded.goodput_ops_per_ms)
          << "shedding must preserve goodput at " << mult << "x, not collapse it";
    }
    WPOS_CHECK(unbounded.shed == 0) << "an unbounded port must never shed";
  }
  std::printf("the server is saturated either way; what the bound buys is the tail —\n"
              "queued callers wait O(limit) service times instead of O(clients).\n");

  std::printf("\n=== Ablation 6: client-side FS cache — RPCs per file op ===\n");
  const double uncached_rpcs = FileIntensiveRpcsPerOp(false);
  const double cached_rpcs = FileIntensiveRpcsPerOp(true);
  std::printf("file-intensive loop: uncached %.2f RPCs/op, cached %.2f RPCs/op (%.1fx)\n",
              uncached_rpcs, cached_rpcs, uncached_rpcs / cached_rpcs);
  report->Add("fscache.uncached.rpcs_per_op", uncached_rpcs);
  report->Add("fscache.cached.rpcs_per_op", cached_rpcs);
  report->Add("fscache.ratio", uncached_rpcs / cached_rpcs);
  WPOS_CHECK(uncached_rpcs >= 2 * cached_rpcs)
      << "write-behind + read-ahead + the attribute cache must at least halve "
         "cross-server RPC traffic on the file-intensive loop";
  std::printf("write-behind coalesces the write pass, read-ahead turns the re-read\n"
              "pass into one fetch, and fstat is answered from the attribute cache.\n");

  std::printf("\n=== Ablation 7: mapped file I/O vs per-read RPCs ===\n");
  const MappedReadResult read_pass = MappedVsReadPass(false);
  const MappedReadResult mapped_pass = MappedVsReadPass(true);
  std::printf("sequential 64 KB pass: read() %.2f RPCs/op %.3f c/B, "
              "mapped %.2f RPCs/op %.3f c/B (%.1fx fewer RPCs)\n",
              read_pass.rpcs_per_op, read_pass.cycles_per_byte, mapped_pass.rpcs_per_op,
              mapped_pass.cycles_per_byte, read_pass.rpcs_per_op / mapped_pass.rpcs_per_op);
  report->Add("mmap.read.rpcs_per_op", read_pass.rpcs_per_op);
  report->Add("mmap.read.cycles_per_byte", read_pass.cycles_per_byte);
  report->Add("mmap.mapped.rpcs_per_op", mapped_pass.rpcs_per_op);
  report->Add("mmap.mapped.cycles_per_byte", mapped_pass.cycles_per_byte);
  report->Add("mmap.rpc_ratio", read_pass.rpcs_per_op / mapped_pass.rpcs_per_op);
  WPOS_CHECK(read_pass.rpcs_per_op >= 4 * mapped_pass.rpcs_per_op)
      << "per-page faults with readahead must cut server RPCs at least 4x "
         "against uncached per-page reads";
  std::printf("each read() is a cross-server round trip; a mapped pass faults once\n"
              "per readahead batch, so the pager amortizes the RPC across 8 pages.\n");
}

void BM_Handoff(benchmark::State& state) {
  const bool handoff = state.range(0) != 0;
  for (auto _ : state) {
    const double cycles = RpcCyclesPerOp(handoff, 8);
    state.SetIterationTime(cycles * kOps / 133e6);
    state.counters["cycles_per_op"] = cycles;
  }
}
BENCHMARK(BM_Handoff)->Arg(1)->Arg(0)->UseManualTime()->Iterations(1);

void BM_CacheSize(benchmark::State& state) {
  const uint32_t kb = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const double cycles = RpcCyclesPerOp(true, kb);
    state.SetIterationTime(cycles * kOps / 133e6);
    state.counters["cycles_per_op"] = cycles;
  }
}
BENCHMARK(BM_CacheSize)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);
  bench::JsonReport report;
  PrintAblations(&report, trace_path);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
