// Reproduces the double-memory-management claim: "The result was essentially
// two memory management systems, with OS/2's built on the microkernel's,
// which, while workable, greatly increased the memory footprint."
//
// An allocation-heavy program runs twice: through the OS/2 commitment-
// oriented layer (eager commit, byte-granular sizes, suballocation metadata)
// and directly against the lazy page-oriented microkernel. Footprint =
// physical frames + bookkeeping; cycles are reported as well.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/hw/machine.h"
#include "src/pers/os2/os2_memory.h"

namespace {

struct Footprint {
  uint64_t frames = 0;
  uint64_t metadata_bytes = 0;
  uint64_t cycles = 0;
};

constexpr int kObjects = 64;
constexpr uint64_t kObjectBytes = 6000;  // 1.46 pages: byte-vs-page rounding shows
constexpr uint64_t kTouchedBytes = 512;  // what the program actually uses early

Footprint RunOs2Layer(const std::string& trace_path = std::string()) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  bench::ArmTrace(kernel, trace_path);
  mk::Task* task = kernel.CreateTask("os2app");
  pers::Os2Memory memory(kernel, *task);
  Footprint fp;
  kernel.CreateThread(task, "main", [&](mk::Env& env) {
    const uint64_t f0 = machine.mem().frames_allocated();
    const uint64_t c0 = kernel.cpu().cycles();
    std::vector<hw::VirtAddr> objs;
    for (int i = 0; i < kObjects; ++i) {
      auto mem = memory.AllocMem(env, kObjectBytes, pers::kPagCommit);
      WPOS_CHECK(mem.ok());
      objs.push_back(*mem);
      // Suballocate a few pieces (OS/2 heap style) and touch a little.
      (void)memory.SubAlloc(env, *mem, 128);
      (void)memory.SubAlloc(env, *mem, 256);
      WPOS_CHECK(kernel.UserTouch(*task, *mem, kTouchedBytes, true) == base::Status::kOk);
    }
    fp.cycles = kernel.cpu().cycles() - c0;
    fp.frames = machine.mem().frames_allocated() - f0;
    fp.metadata_bytes = memory.metadata_bytes();
  });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
  return fp;
}

Footprint RunRawKernel() {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  mk::Task* task = kernel.CreateTask("rawapp");
  Footprint fp;
  kernel.CreateThread(task, "main", [&](mk::Env& env) {
    const uint64_t f0 = machine.mem().frames_allocated();
    const uint64_t c0 = kernel.cpu().cycles();
    for (int i = 0; i < kObjects; ++i) {
      auto mem = kernel.VmAllocate(*task, kObjectBytes);
      WPOS_CHECK(mem.ok());
      WPOS_CHECK(kernel.UserTouch(*task, *mem, kTouchedBytes, true) == base::Status::kOk);
    }
    fp.cycles = kernel.cpu().cycles() - c0;
    fp.frames = machine.mem().frames_allocated() - f0;
    fp.metadata_bytes = 0;  // the microkernel keeps page tables only
  });
  kernel.Run();
  return fp;
}

void PrintFootprint(const Footprint& os2, const Footprint& raw, bench::JsonReport* report) {
  report->Add("os2.frames", static_cast<double>(os2.frames));
  report->Add("raw.frames", static_cast<double>(raw.frames));
  report->Add("os2.metadata_bytes", static_cast<double>(os2.metadata_bytes));
  report->Add("os2.alloc_cycles", static_cast<double>(os2.cycles));
  report->Add("raw.alloc_cycles", static_cast<double>(raw.cycles));
  report->Add("footprint.ratio", static_cast<double>(os2.frames) / static_cast<double>(raw.frames));
  std::printf("\n=== OS/2 double memory management: footprint ===\n");
  std::printf("(%d objects of %llu bytes, %llu bytes touched each)\n", kObjects,
              static_cast<unsigned long long>(kObjectBytes),
              static_cast<unsigned long long>(kTouchedBytes));
  std::printf("%-32s %14s %14s\n", "", "OS/2-on-mk", "raw microkernel");
  std::printf("%-32s %14llu %14llu\n", "physical frames consumed",
              static_cast<unsigned long long>(os2.frames),
              static_cast<unsigned long long>(raw.frames));
  std::printf("%-32s %14llu %14llu\n", "server metadata bytes",
              static_cast<unsigned long long>(os2.metadata_bytes),
              static_cast<unsigned long long>(raw.metadata_bytes));
  std::printf("%-32s %14llu %14llu\n", "allocation cycles",
              static_cast<unsigned long long>(os2.cycles),
              static_cast<unsigned long long>(raw.cycles));
  std::printf("%-32s %14.2fx\n", "footprint increase",
              static_cast<double>(os2.frames) / static_cast<double>(raw.frames));
  std::printf("paper: eager commitment + retained byte sizes on top of lazy page-oriented\n"
              "memory \"greatly increased the memory footprint\".\n\n");
}

void BM_Os2Memory(benchmark::State& state) {
  const Footprint os2 = RunOs2Layer();
  const Footprint raw = RunRawKernel();
  for (auto _ : state) {
    state.SetIterationTime(static_cast<double>(os2.cycles) / 133e6);
    state.counters["os2_frames"] = static_cast<double>(os2.frames);
    state.counters["raw_frames"] = static_cast<double>(raw.frames);
    state.counters["footprint_ratio"] =
        static_cast<double>(os2.frames) / static_cast<double>(raw.frames);
  }
}
BENCHMARK(BM_Os2Memory)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  PrintFootprint(RunOs2Layer(trace_path), RunRawKernel(), &report);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
