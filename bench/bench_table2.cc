// Reproduces Table 2: "Trap Versus RPC" — instructions, cycles, bus cycles
// and CPI for the thread_self() trap versus a 32-byte RPC to a do-nothing
// server, measured with the simulated CPU's performance counters (the paper
// used the Pentium's counter hardware).
//
// Paper shape to reproduce: RPC ≈ 2.8x the instructions, ≈ 5x the cycles,
// ≈ 8x the bus cycles, and roughly double the CPI — with the extra stall
// coming largely from I-cache misses, which the miss columns break out.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <cstdio>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"

namespace {

struct Window {
  hw::CpuCounters counters;
  double per_op(uint64_t hw::CpuCounters::*field, int ops) const {
    return static_cast<double>(counters.*field) / ops;
  }
};

constexpr int kWarmup = 200;
constexpr int kOps = 1000;

// Measures `kOps` thread_self() traps in a steady-state loop.
Window MeasureTrap() {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  mk::Task* task = kernel.CreateTask("app");
  Window window;
  kernel.CreateThread(task, "main", [&](mk::Env& env) {
    for (int i = 0; i < kWarmup; ++i) {
      benchmark::DoNotOptimize(env.ThreadSelf());
    }
    const hw::CpuCounters c0 = kernel.Counters();
    for (int i = 0; i < kOps; ++i) {
      benchmark::DoNotOptimize(env.ThreadSelf());
    }
    window.counters = kernel.Counters() - c0;
  });
  kernel.Run();
  return window;
}

// Measures `kOps` 32-byte RPCs to a server that does nothing but receive and
// reply (the paper's null server).
Window MeasureRpc32() {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  kernel.CreateThread(server_task, "null-server", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    while (req.ok()) {
      // The classic server loop: reply and atomically wait for the next
      // request, so the server is parked before the client calls again.
      req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, recv, buf, sizeof(buf));
    }
  });
  Window window;
  kernel.CreateThread(client_task, "client", [&, send = *send](mk::Env& env) {
    char payload[32] = {};
    char reply[32];
    for (int i = 0; i < kWarmup; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    const hw::CpuCounters c0 = kernel.Counters();
    for (int i = 0; i < kOps; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    window.counters = kernel.Counters() - c0;
    kernel.PortDestroy(*server_task, *recv);
  });
  kernel.Run();
  return window;
}

void PrintTable2(const Window& trap, const Window& rpc) {
  auto row = [&](const char* name, uint64_t hw::CpuCounters::*field, double paper_trap,
                 double paper_rpc) {
    const double t = trap.per_op(field, kOps);
    const double r = rpc.per_op(field, kOps);
    std::printf("%-14s %12.0f %12.0f %8.2f   (paper: %5.0f %5.0f %5.2f)\n", name, t, r, r / t,
                paper_trap, paper_rpc, paper_rpc / paper_trap);
  };
  std::printf("\n=== Table 2: Trap Versus RPC (per operation) ===\n");
  std::printf("%-14s %12s %12s %8s\n", "", "thread_self", "32-byte RPC", "ratio");
  row("Instructions", &hw::CpuCounters::instructions, 465, 1317);
  row("Cycles", &hw::CpuCounters::cycles, 970, 5163);
  row("Bus Cycles", &hw::CpuCounters::bus_cycles, 218, 1849);
  const double trap_cpi = static_cast<double>(trap.counters.cycles) /
                          static_cast<double>(trap.counters.instructions);
  const double rpc_cpi = static_cast<double>(rpc.counters.cycles) /
                         static_cast<double>(rpc.counters.instructions);
  std::printf("%-14s %12.1f %12.1f %8.2f   (paper: %5.1f %5.1f %5.2f)\n", "CPI", trap_cpi,
              rpc_cpi, rpc_cpi / trap_cpi, 2.0, 3.9, 1.95);
  std::printf("--- stall analysis (per operation; the paper reports no breakdown) ---\n");
  auto miss_row = [&](const char* name, uint64_t hw::CpuCounters::*field) {
    std::printf("%-14s %12.1f %12.1f\n", name, trap.per_op(field, kOps),
                rpc.per_op(field, kOps));
  };
  miss_row("I-cache miss", &hw::CpuCounters::icache_misses);
  miss_row("D-cache miss", &hw::CpuCounters::dcache_misses);
  miss_row("TLB miss", &hw::CpuCounters::tlb_misses);
  std::printf("each RPC makes two address-space switches; in this model the paper's\n"
              "\"misses on the I-cache\" stall appears as the per-switch TLB/cache refill\n"
              "penalty (%u cycles each, %u bus transactions) charged at pmap activation,\n"
              "because the steady-state microbenchmark loop itself stays cache-resident.\n\n",
              mk::Costs::kSpaceSwitchRefillCycles, mk::Costs::kSpaceSwitchRefillBus);
}

void BM_Trap(benchmark::State& state) {
  for (auto _ : state) {
    const Window w = MeasureTrap();
    state.SetIterationTime(static_cast<double>(w.counters.cycles) / 133e6);
    state.counters["instr_per_op"] = w.per_op(&hw::CpuCounters::instructions, kOps);
    state.counters["cycles_per_op"] = w.per_op(&hw::CpuCounters::cycles, kOps);
    state.counters["bus_per_op"] = w.per_op(&hw::CpuCounters::bus_cycles, kOps);
  }
}
BENCHMARK(BM_Trap)->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Rpc32(benchmark::State& state) {
  for (auto _ : state) {
    const Window w = MeasureRpc32();
    state.SetIterationTime(static_cast<double>(w.counters.cycles) / 133e6);
    state.counters["instr_per_op"] = w.per_op(&hw::CpuCounters::instructions, kOps);
    state.counters["cycles_per_op"] = w.per_op(&hw::CpuCounters::cycles, kOps);
    state.counters["bus_per_op"] = w.per_op(&hw::CpuCounters::bus_cycles, kOps);
  }
}
BENCHMARK(BM_Rpc32)->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  PrintTable2(MeasureTrap(), MeasureRpc32());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
