// Reproduces Table 2: "Trap Versus RPC" — instructions, cycles, bus cycles
// and CPI for the thread_self() trap versus a 32-byte RPC to a do-nothing
// server, measured with the simulated CPU's performance counters (the paper
// used the Pentium's counter hardware).
//
// Paper shape to reproduce: RPC ≈ 2.8x the instructions, ≈ 5x the cycles,
// ≈ 8x the bus cycles, and roughly double the CPI — with the extra stall
// coming largely from I-cache misses, which the miss columns break out.
//
// A second, traced run re-derives the same table purely from the tracer's
// span data and checks it for exact equality against the counter windows —
// both that spans lose nothing (the observability claim) and that tracing
// charges nothing (the zero-perturbation claim). `--trace <path>` exports
// the traced RPC run as a Chrome trace-event file; `--json <path>` writes
// the machine-readable paper-vs-measured report.
#include <benchmark/benchmark.h>

#include "src/base/log.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/lib/json_report.h"
#include "bench/lib/trace_export.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mk/trace/exporters.h"

namespace {

struct Window {
  hw::CpuCounters counters;
  double per_op(uint64_t hw::CpuCounters::*field, int ops) const {
    return static_cast<double>(counters.*field) / ops;
  }
};

// Span-side view of the same measurement window: the delta of the tracer's
// per-kind aggregates over the measured loop.
struct SpanDelta {
  uint64_t count = 0;
  hw::CpuCounters total;
  std::array<hw::CpuCounters, mk::trace::kMaxSpanPhases> phases{};
  double per_op(uint64_t hw::CpuCounters::*field, int ops) const {
    return static_cast<double>(total.*field) / ops;
  }
};

SpanDelta Diff(const mk::trace::Tracer::SpanStats& after,
               const mk::trace::Tracer::SpanStats& before) {
  SpanDelta d;
  d.count = after.count - before.count;
  d.total = after.total - before.total;
  for (int i = 0; i < mk::trace::kMaxSpanPhases; ++i) {
    d.phases[i] = after.phases[i] - before.phases[i];
  }
  return d;
}

constexpr int kWarmup = 200;
constexpr int kOps = 1000;

// Measures `kOps` thread_self() traps in a steady-state loop. With `traced`
// the kernel tracer runs during the measurement and `spans` receives the
// trap-span aggregate delta over the measured loop.
Window MeasureTrap(bool traced = false, SpanDelta* spans = nullptr) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  if (traced) {
    kernel.tracer().Enable();
  }
  mk::Task* task = kernel.CreateTask("app");
  Window window;
  kernel.CreateThread(task, "main", [&](mk::Env& env) {
    for (int i = 0; i < kWarmup; ++i) {
      benchmark::DoNotOptimize(env.ThreadSelf());
    }
    const mk::trace::Tracer::SpanStats s0 = kernel.tracer().stats(mk::trace::SpanKind::kTrap);
    const hw::CpuCounters c0 = kernel.Counters();
    for (int i = 0; i < kOps; ++i) {
      benchmark::DoNotOptimize(env.ThreadSelf());
    }
    window.counters = kernel.Counters() - c0;
    if (spans != nullptr) {
      *spans = Diff(kernel.tracer().stats(mk::trace::SpanKind::kTrap), s0);
    }
  });
  kernel.Run();
  return window;
}

// Measures `kOps` 32-byte RPCs to a server that does nothing but receive and
// reply (the paper's null server). With `traced`, `spans` receives the
// RPC-span delta and `trace_path` (if non-empty) gets a Chrome trace of the
// whole run.
Window MeasureRpc32(bool traced = false, SpanDelta* spans = nullptr,
                    const std::string& trace_path = std::string()) {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  if (traced) {
    kernel.tracer().Enable();
  }
  mk::Task* server_task = kernel.CreateTask("server");
  mk::Task* client_task = kernel.CreateTask("client");
  auto recv = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *recv, *client_task);
  kernel.CreateThread(server_task, "null-server", [&, recv = *recv](mk::Env& env) {
    char buf[64];
    auto req = env.RpcReceive(recv, buf, sizeof(buf));
    while (req.ok()) {
      // The classic server loop: reply and atomically wait for the next
      // request, so the server is parked before the client calls again.
      req = env.kernel().RpcReplyAndReceive(req->token, nullptr, 0, recv, buf, sizeof(buf));
    }
  });
  Window window;
  kernel.CreateThread(client_task, "client", [&, send = *send](mk::Env& env) {
    char payload[32] = {};
    char reply[32];
    for (int i = 0; i < kWarmup; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    const mk::trace::Tracer::SpanStats s0 = kernel.tracer().stats(mk::trace::SpanKind::kRpc);
    const hw::CpuCounters c0 = kernel.Counters();
    for (int i = 0; i < kOps; ++i) {
      (void)env.RpcCall(send, payload, sizeof(payload), reply, sizeof(reply));
    }
    window.counters = kernel.Counters() - c0;
    if (spans != nullptr) {
      *spans = Diff(kernel.tracer().stats(mk::trace::SpanKind::kRpc), s0);
    }
    kernel.PortDestroy(*server_task, *recv);
  });
  kernel.Run();
  bench::ExportTrace(kernel, trace_path);
  return window;
}

void PrintTable2(const Window& trap, const Window& rpc, bench::JsonReport* report) {
  auto row = [&](const char* name, const char* key, uint64_t hw::CpuCounters::*field,
                 double paper_trap, double paper_rpc) {
    const double t = trap.per_op(field, kOps);
    const double r = rpc.per_op(field, kOps);
    std::printf("%-14s %12.0f %12.0f %8.2f   (paper: %5.0f %5.0f %5.2f)\n", name, t, r, r / t,
                paper_trap, paper_rpc, paper_rpc / paper_trap);
    report->Add(std::string("trap.") + key, t, paper_trap);
    report->Add(std::string("rpc32.") + key, r, paper_rpc);
  };
  std::printf("\n=== Table 2: Trap Versus RPC (per operation) ===\n");
  std::printf("%-14s %12s %12s %8s\n", "", "thread_self", "32-byte RPC", "ratio");
  row("Instructions", "instructions", &hw::CpuCounters::instructions, 465, 1317);
  row("Cycles", "cycles", &hw::CpuCounters::cycles, 970, 5163);
  row("Bus Cycles", "bus_cycles", &hw::CpuCounters::bus_cycles, 218, 1849);
  const double trap_cpi = static_cast<double>(trap.counters.cycles) /
                          static_cast<double>(trap.counters.instructions);
  const double rpc_cpi = static_cast<double>(rpc.counters.cycles) /
                         static_cast<double>(rpc.counters.instructions);
  std::printf("%-14s %12.1f %12.1f %8.2f   (paper: %5.1f %5.1f %5.2f)\n", "CPI", trap_cpi,
              rpc_cpi, rpc_cpi / trap_cpi, 2.0, 3.9, 1.95);
  report->Add("trap.cpi", trap_cpi, 2.0);
  report->Add("rpc32.cpi", rpc_cpi, 3.9);
  std::printf("--- stall analysis (per operation; the paper reports no breakdown) ---\n");
  auto miss_row = [&](const char* name, uint64_t hw::CpuCounters::*field) {
    std::printf("%-14s %12.1f %12.1f\n", name, trap.per_op(field, kOps),
                rpc.per_op(field, kOps));
  };
  miss_row("I-cache miss", &hw::CpuCounters::icache_misses);
  miss_row("D-cache miss", &hw::CpuCounters::dcache_misses);
  miss_row("TLB miss", &hw::CpuCounters::tlb_misses);
  std::printf("each RPC makes two address-space switches; in this model the paper's\n"
              "\"misses on the I-cache\" stall appears as the per-switch TLB/cache refill\n"
              "penalty (%u cycles each, %u bus transactions) charged at pmap activation,\n"
              "because the steady-state microbenchmark loop itself stays cache-resident.\n\n",
              mk::Costs::kSpaceSwitchRefillCycles, mk::Costs::kSpaceSwitchRefillBus);
}

// The observability acceptance check: the traced run's span aggregates must
// reproduce the counter windows of the same run EXACTLY (the single global
// cycle clock means a client-side span brackets every cycle charged on the
// operation's behalf), and tracing must not have perturbed the untraced
// numbers by a single count.
void PrintSpanTable(const Window& untraced_trap, const Window& untraced_rpc,
                    const Window& trap_w, const SpanDelta& trap, const Window& rpc_w,
                    const SpanDelta& rpc, bench::JsonReport* report) {
  WPOS_CHECK(trap.count == kOps) << "trap spans: " << trap.count;
  WPOS_CHECK(rpc.count == kOps) << "rpc spans: " << rpc.count;
  auto exact = [](const char* what, const hw::CpuCounters& spans, const hw::CpuCounters& window) {
    WPOS_CHECK(spans.instructions == window.instructions)
        << what << " instructions: spans " << spans.instructions << " window "
        << window.instructions;
    WPOS_CHECK(spans.cycles == window.cycles)
        << what << " cycles: spans " << spans.cycles << " window " << window.cycles;
    WPOS_CHECK(spans.bus_cycles == window.bus_cycles)
        << what << " bus cycles: spans " << spans.bus_cycles << " window " << window.bus_cycles;
  };
  exact("trap", trap.total, trap_w.counters);
  exact("rpc32", rpc.total, rpc_w.counters);
  // Zero perturbation: the traced run's windows equal the untraced run's.
  exact("trap traced-vs-untraced", trap_w.counters, untraced_trap.counters);
  exact("rpc32 traced-vs-untraced", rpc_w.counters, untraced_rpc.counters);

  std::printf("=== Table 2 rederived from tracer spans (traced run) ===\n");
  auto row = [&](const char* name, uint64_t hw::CpuCounters::*field) {
    std::printf("%-14s %12.0f %12.0f   == counter windows exactly\n", name,
                trap.per_op(field, kOps), rpc.per_op(field, kOps));
  };
  std::printf("%-14s %12s %12s\n", "(from spans)", "thread_self", "32-byte RPC");
  row("Instructions", &hw::CpuCounters::instructions);
  row("Cycles", &hw::CpuCounters::cycles);
  row("Bus Cycles", &hw::CpuCounters::bus_cycles);
  const double trap_cpi =
      static_cast<double>(trap.total.cycles) / static_cast<double>(trap.total.instructions);
  const double rpc_cpi =
      static_cast<double>(rpc.total.cycles) / static_cast<double>(rpc.total.instructions);
  std::printf("%-14s %12.1f %12.1f\n", "CPI", trap_cpi, rpc_cpi);
  std::printf("--- RPC phase breakdown (cycles per op, from span phases) ---\n");
  const char* phase_names[] = {"client_entry", "server", "reply_return"};
  for (int i = 0; i < mk::trace::kMaxSpanPhases; ++i) {
    const double cycles = static_cast<double>(rpc.phases[i].cycles) / kOps;
    std::printf("%-14s %12.1f\n", phase_names[i], cycles);
    report->Add(std::string("rpc32.span.") + phase_names[i] + "_cycles", cycles);
  }
  report->Add("rpc32.span.count", static_cast<double>(rpc.count));
  report->Add("trap.span.count", static_cast<double>(trap.count));
  // 1.0 means every exact-equality check above passed (WPOS_CHECK aborts
  // otherwise, so a written report always says 1).
  report->Add("span_window_exact_match", 1.0);
  std::printf("\n");
}

void BM_Trap(benchmark::State& state) {
  for (auto _ : state) {
    const Window w = MeasureTrap();
    state.SetIterationTime(static_cast<double>(w.counters.cycles) / 133e6);
    state.counters["instr_per_op"] = w.per_op(&hw::CpuCounters::instructions, kOps);
    state.counters["cycles_per_op"] = w.per_op(&hw::CpuCounters::cycles, kOps);
    state.counters["bus_per_op"] = w.per_op(&hw::CpuCounters::bus_cycles, kOps);
  }
}
BENCHMARK(BM_Trap)->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Rpc32(benchmark::State& state) {
  for (auto _ : state) {
    const Window w = MeasureRpc32();
    state.SetIterationTime(static_cast<double>(w.counters.cycles) / 133e6);
    state.counters["instr_per_op"] = w.per_op(&hw::CpuCounters::instructions, kOps);
    state.counters["cycles_per_op"] = w.per_op(&hw::CpuCounters::cycles, kOps);
    state.counters["bus_per_op"] = w.per_op(&hw::CpuCounters::bus_cycles, kOps);
  }
}
BENCHMARK(BM_Rpc32)->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractJsonPath(&argc, argv);
  const std::string trace_path = bench::ExtractTracePath(&argc, argv);
  base::SetLogLevel(base::LogLevel::kError);  // parked servers at halt are expected
  bench::JsonReport report;
  const Window trap = MeasureTrap();
  const Window rpc = MeasureRpc32();
  PrintTable2(trap, rpc, &report);
  SpanDelta trap_spans, rpc_spans;
  const Window trap_traced = MeasureTrap(true, &trap_spans);
  const Window rpc_traced = MeasureRpc32(true, &rpc_spans, trace_path);
  PrintSpanTable(trap, rpc, trap_traced, trap_spans, rpc_traced, rpc_spans, &report);
  if (!json_path.empty()) {
    WPOS_CHECK(report.WriteFile(json_path)) << "cannot write " << json_path;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
