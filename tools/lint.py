#!/usr/bin/env python3
"""Repository lint checks, run in CI before the build.

Checks, over every header and source file under src/ and tests/:

  1. Headers carry an include guard derived from the repo-relative path
     (src/mk/kernel.h -> SRC_MK_KERNEL_H_) with matching #ifndef/#define
     at the top and a trailing #endif comment.
  2. No `using namespace` at file scope in headers: it leaks into every
     includer and has caused real ODR-adjacent confusion in stub code.
  3. Modelled cost constants live only in src/mk/costs.h. Scattering
     `struct Costs` members across files makes the calibration knobs of
     the reproduction impossible to audit against the paper's tables.
  4. Trace events come from the central registry: every EventType:: /
     SpanKind:: reference must name a member of the enums declared in
     src/mk/trace/events.h, and emit sites (Emit, BeginSpan, MarkPhase,
     MarkQueued, EndSpan, ScopedSpan) must not smuggle in ad-hoc string
     literals as event names. Keeping the event vocabulary in one header is what lets
     the exporters classify events with static tables.
     The registry must also be live: every EventType/SpanKind member
     except kCount must be referenced somewhere outside events.h and the
     tracer implementation (src/mk/trace). A registered-but-never-emitted
     event documents observability the traces do not actually have.
  5. Fault points come from the central registry: every FaultPoint:: /
     FaultMode:: reference must name a member of the enums declared in
     src/mk/fault/points.h. A fault campaign is replayed from a seed plus
     the visit sequence of named points; an unregistered point would be
     invisible to campaign tooling and to the replay documentation.
     The registry must also be live: every FaultPoint/FaultMode member
     except kNone/kCount must be referenced somewhere outside points.h.
     A registered-but-never-armed-or-fired point documents coverage the
     campaign does not actually have.
  6. Determinism (src/mk, src/svc, and src/pers; src/mk/host.cc exempt):
     the
     simulation must replay bit-identically — that is what makes schedule
     traces from the explorer reproducible. Banned: rand()/srand(),
     std::random_device, wall-clock reads (std::chrono::system_clock etc.,
     time(), gettimeofday, clock_gettime), and range-for iteration over
     std::unordered_map/set (iteration order is unspecified and varies
     between libc++/libstdc++ and across runs with pointer keys). An
     unordered loop whose order provably does not escape may carry an
     `unordered-ok:` comment on the loop line or the line above.

Exit status is the number of files with violations (0 = clean).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "bench")
COSTS_HEADER = Path("src") / "mk" / "costs.h"
TRACE_EVENTS_HEADER = Path("src") / "mk" / "trace" / "events.h"
FAULT_POINTS_HEADER = Path("src") / "mk" / "fault" / "points.h"

DETERMINISM_SCOPES = (Path("src") / "mk", Path("src") / "svc", Path("src") / "pers")
DETERMINISM_EXEMPT = {Path("src") / "mk" / "host.cc"}
BANNED_NONDETERMINISM = (
    (re.compile(r"\b(?:s?rand)\s*\("), "rand()/srand() — seedless PRNG"),
    (re.compile(r"std::random_device"), "std::random_device — hardware entropy"),
    (
        re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"),
        "host clock read — simulated time comes from hw::Cpu cycles",
    ),
    (
        re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|\b(?:gettimeofday|clock_gettime)\b"),
        "wall-clock read — simulated time comes from hw::Cpu cycles",
    ),
)
UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set)<[^;{}()]*?>&?\s+(\w+)\s*[;={(]")
UNORDERED_ACCESSOR_RE = re.compile(r"std::unordered_(?:map|set)<[^;{}]*?>&\s+(\w+)\s*\(")
RANGE_FOR_RE = re.compile(r"^[^\S\n]*for\s*\([^;{}\n]*?:\s*([^){\n]+)\)", re.MULTILINE)
UNORDERED_OK_MARK = "unordered-ok"
INTROSPECT_HEADER = Path("src") / "mk" / "analysis" / "introspect.h"

GUARD_RE = re.compile(r"^#ifndef\s+([A-Z0-9_]+)\s*$", re.MULTILINE)
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;", re.MULTILINE)
COSTS_DEF_RE = re.compile(r"^\s*struct\s+Costs\b(?!\s*;)", re.MULTILINE)
TRACE_ENUM_REF_RE = re.compile(r"\b(EventType|SpanKind)::(\w+)")
FAULT_ENUM_REF_RE = re.compile(r"\b(FaultPoint|FaultMode)::(\w+)")
TRACE_EMIT_CALL_RE = re.compile(
    r"\b(Emit|BeginSpan|MarkPhase|MarkQueued|EndSpan|ScopedSpan)\s*\("
)


def load_enum_registry(header: Path, enum_names: tuple) -> dict:
    """Parses `enum class` member lists out of a registry header."""
    path = REPO_ROOT / header
    if not path.is_file():
        return {}
    text = path.read_text(encoding="utf-8", errors="replace")
    registry = {}
    for enum_name in enum_names:
        match = re.search(
            rf"enum\s+class\s+{enum_name}\b[^{{]*{{(.*?)}};", text, re.DOTALL
        )
        if match:
            # Comments inside the body routinely mention other members
            # ("supports kCrashTask, ..."), so strip them before harvesting.
            body = re.sub(r"//[^\n]*", "", match.group(1))
            registry[enum_name] = set(re.findall(r"\bk\w+", body))
    return registry


def call_argument_span(text: str, open_paren: int, limit: int = 2000) -> str:
    """Returns the text of a balanced argument list starting at `open_paren`."""
    depth = 0
    end = min(len(text), open_paren + limit)
    for i in range(open_paren, end):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren : i + 1]
    return text[open_paren:end]


def check_trace_events(
    rel_path: Path, text: str, errors: list, registry: dict, used: dict
) -> None:
    if rel_path == TRACE_EVENTS_HEADER or not registry:
        return
    in_trace_impl = rel_path.parts[:3] == ("src", "mk", "trace")
    for match in TRACE_ENUM_REF_RE.finditer(text):
        enum_name, member = match.groups()
        if member not in registry.get(enum_name, set()):
            line = text.count("\n", 0, match.start()) + 1
            errors.append(
                f"{rel_path}:{line}: {enum_name}::{member} is not declared in "
                f"{TRACE_EVENTS_HEADER}"
            )
        elif not in_trace_impl:
            # Liveness is judged outside the tracer machinery: exporters
            # classifying an event does not mean anything ever emits it.
            used.setdefault(enum_name, set()).add(member)
    for match in TRACE_EMIT_CALL_RE.finditer(text):
        # The tracer's own implementation may mention these names in
        # declarations and comments; emit *sites* live outside src/mk/trace.
        if in_trace_impl:
            continue
        args = call_argument_span(text, match.end() - 1)
        if '"' in args:
            line = text.count("\n", 0, match.start()) + 1
            errors.append(
                f"{rel_path}:{line}: string literal in {match.group(1)}() — trace "
                f"event names come from {TRACE_EVENTS_HEADER}, not ad-hoc strings"
            )


def check_fault_points(
    rel_path: Path, text: str, errors: list, registry: dict, used: dict
) -> None:
    if rel_path == FAULT_POINTS_HEADER or not registry:
        return
    for match in FAULT_ENUM_REF_RE.finditer(text):
        enum_name, member = match.groups()
        if member not in registry.get(enum_name, set()):
            line = text.count("\n", 0, match.start()) + 1
            errors.append(
                f"{rel_path}:{line}: {enum_name}::{member} is not declared in "
                f"{FAULT_POINTS_HEADER}"
            )
        else:
            used.setdefault(enum_name, set()).add(member)


FAULT_REGISTRY_SENTINELS = {"kNone", "kCount"}
TRACE_REGISTRY_SENTINELS = {"kCount"}


def check_trace_registry_live(registry: dict, used: dict) -> list:
    """Every registered trace event/span kind must be used outside the tracer."""
    errors = []
    for enum_name in sorted(registry):
        dead = registry[enum_name] - used.get(enum_name, set()) - TRACE_REGISTRY_SENTINELS
        for member in sorted(dead):
            errors.append(
                f"{TRACE_EVENTS_HEADER}: {enum_name}::{member} is registered but "
                f"never referenced outside the tracer — nothing emits or consumes "
                f"it; remove it or wire in an emit site"
            )
    return errors


def check_fault_registry_live(registry: dict, used: dict) -> list:
    """Every registered fault point/mode must be referenced outside points.h."""
    errors = []
    for enum_name in sorted(registry):
        dead = registry[enum_name] - used.get(enum_name, set()) - FAULT_REGISTRY_SENTINELS
        for member in sorted(dead):
            errors.append(
                f"{FAULT_POINTS_HEADER}: {enum_name}::{member} is registered but "
                f"never referenced outside the registry — a fault campaign cannot "
                f"exercise it; remove it or wire it into an injection site"
            )
    return errors


def load_unordered_accessors() -> set:
    """Names of Introspector accessors returning unordered-container refs."""
    path = REPO_ROOT / INTROSPECT_HEADER
    if not path.is_file():
        return set()
    text = path.read_text(encoding="utf-8", errors="replace")
    return set(UNORDERED_ACCESSOR_RE.findall(text))


def in_determinism_scope(rel_path: Path) -> bool:
    if rel_path in DETERMINISM_EXEMPT:
        return False
    return any(
        rel_path.parts[: len(scope.parts)] == scope.parts for scope in DETERMINISM_SCOPES
    )


def strip_line_comment(line: str) -> str:
    return line.split("//", 1)[0]


def check_determinism(rel_path: Path, text: str, errors: list, accessors: set) -> None:
    if not in_determinism_scope(rel_path):
        return
    lines = text.split("\n")
    for i, line in enumerate(lines):
        code = strip_line_comment(line)
        for pattern, why in BANNED_NONDETERMINISM:
            if pattern.search(code):
                errors.append(f"{rel_path}:{i + 1}: nondeterminism: {why}")
    # Names declared with an unordered type in this file — and, for a .cc
    # file, in its own header, where the members usually live.
    decl_text = text
    if rel_path.suffix == ".cc":
        sibling = REPO_ROOT / rel_path.with_suffix(".h")
        if sibling.is_file():
            decl_text += sibling.read_text(encoding="utf-8", errors="replace")
    unordered_names = set(UNORDERED_DECL_RE.findall(decl_text)) | accessors
    if not unordered_names:
        return
    for match in RANGE_FOR_RE.finditer(text):
        expr_names = set(re.findall(r"\w+", match.group(1)))
        hits = expr_names & unordered_names
        if not hits:
            continue
        line = text.count("\n", 0, match.start()) + 1
        context = lines[max(0, line - 2) : line]
        if any(UNORDERED_OK_MARK in c for c in context):
            continue
        errors.append(
            f"{rel_path}:{line}: range-for over unordered container "
            f"'{sorted(hits)[0]}' — iteration order is not deterministic; sort "
            f"the keys, use an ordered container, or annotate the loop with "
            f"'// {UNORDERED_OK_MARK}: <why order does not escape>'"
        )


def expected_guard(rel_path: Path) -> str:
    return re.sub(r"[^A-Za-z0-9]", "_", str(rel_path)).upper() + "_"


def check_header_guard(rel_path: Path, text: str, errors: list) -> None:
    want = expected_guard(rel_path)
    match = GUARD_RE.search(text)
    if match is None:
        errors.append(f"{rel_path}: missing include guard (expected {want})")
        return
    got = match.group(1)
    if got != want:
        errors.append(f"{rel_path}: include guard {got} should be {want}")
        return
    if f"#define {want}" not in text:
        errors.append(f"{rel_path}: #ifndef {want} without matching #define")
    if not re.search(rf"#endif\s*//\s*{re.escape(want)}\s*$", text.rstrip()):
        errors.append(f"{rel_path}: missing trailing '#endif  // {want}'")


def check_using_namespace(rel_path: Path, text: str, errors: list) -> None:
    for match in USING_NAMESPACE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        errors.append(f"{rel_path}:{line}: 'using namespace' in a header")


def check_costs_definition(rel_path: Path, text: str, errors: list) -> None:
    if rel_path == COSTS_HEADER:
        return
    for match in COSTS_DEF_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        errors.append(
            f"{rel_path}:{line}: 'struct Costs' defined outside {COSTS_HEADER}"
        )


def lint_file(
    path: Path,
    trace_registry: dict,
    fault_registry: dict,
    accessors: set,
    fault_used: dict,
    trace_used: dict,
) -> list:
    rel_path = path.relative_to(REPO_ROOT)
    text = path.read_text(encoding="utf-8", errors="replace")
    errors = []
    if path.suffix == ".h":
        check_header_guard(rel_path, text, errors)
        check_using_namespace(rel_path, text, errors)
    check_costs_definition(rel_path, text, errors)
    check_trace_events(rel_path, text, errors, trace_registry, trace_used)
    check_fault_points(rel_path, text, errors, fault_registry, fault_used)
    check_determinism(rel_path, text, errors, accessors)
    return errors


def main() -> int:
    bad_files = 0
    total_errors = 0
    scanned = 0
    trace_registry = load_enum_registry(TRACE_EVENTS_HEADER, ("EventType", "SpanKind"))
    fault_registry = load_enum_registry(FAULT_POINTS_HEADER, ("FaultPoint", "FaultMode"))
    accessors = load_unordered_accessors()
    fault_used = {}
    trace_used = {}
    for scan_dir in SCAN_DIRS:
        root = REPO_ROOT / scan_dir
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            scanned += 1
            errors = lint_file(
                path, trace_registry, fault_registry, accessors, fault_used, trace_used
            )
            if errors:
                bad_files += 1
                total_errors += len(errors)
                for error in errors:
                    print(f"lint: {error}", file=sys.stderr)
    registry_errors = check_fault_registry_live(fault_registry, fault_used)
    registry_errors += check_trace_registry_live(trace_registry, trace_used)
    if registry_errors:
        bad_files += 1
        total_errors += len(registry_errors)
        for error in registry_errors:
            print(f"lint: {error}", file=sys.stderr)
    if total_errors:
        print(f"lint: {total_errors} issue(s) in {bad_files} file(s)", file=sys.stderr)
    else:
        print(f"lint: {scanned} files clean")
    return min(bad_files, 125)


if __name__ == "__main__":
    sys.exit(main())
