#!/usr/bin/env python3
"""Repository lint checks, run in CI before the build.

Checks, over every header and source file under src/ and tests/:

  1. Headers carry an include guard derived from the repo-relative path
     (src/mk/kernel.h -> SRC_MK_KERNEL_H_) with matching #ifndef/#define
     at the top and a trailing #endif comment.
  2. No `using namespace` at file scope in headers: it leaks into every
     includer and has caused real ODR-adjacent confusion in stub code.
  3. Modelled cost constants live only in src/mk/costs.h. Scattering
     `struct Costs` members across files makes the calibration knobs of
     the reproduction impossible to audit against the paper's tables.

Exit status is the number of files with violations (0 = clean).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "bench")
COSTS_HEADER = Path("src") / "mk" / "costs.h"

GUARD_RE = re.compile(r"^#ifndef\s+([A-Z0-9_]+)\s*$", re.MULTILINE)
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;", re.MULTILINE)
COSTS_DEF_RE = re.compile(r"^\s*struct\s+Costs\b(?!\s*;)", re.MULTILINE)


def expected_guard(rel_path: Path) -> str:
    return re.sub(r"[^A-Za-z0-9]", "_", str(rel_path)).upper() + "_"


def check_header_guard(rel_path: Path, text: str, errors: list) -> None:
    want = expected_guard(rel_path)
    match = GUARD_RE.search(text)
    if match is None:
        errors.append(f"{rel_path}: missing include guard (expected {want})")
        return
    got = match.group(1)
    if got != want:
        errors.append(f"{rel_path}: include guard {got} should be {want}")
        return
    if f"#define {want}" not in text:
        errors.append(f"{rel_path}: #ifndef {want} without matching #define")
    if not re.search(rf"#endif\s*//\s*{re.escape(want)}\s*$", text.rstrip()):
        errors.append(f"{rel_path}: missing trailing '#endif  // {want}'")


def check_using_namespace(rel_path: Path, text: str, errors: list) -> None:
    for match in USING_NAMESPACE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        errors.append(f"{rel_path}:{line}: 'using namespace' in a header")


def check_costs_definition(rel_path: Path, text: str, errors: list) -> None:
    if rel_path == COSTS_HEADER:
        return
    for match in COSTS_DEF_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        errors.append(
            f"{rel_path}:{line}: 'struct Costs' defined outside {COSTS_HEADER}"
        )


def lint_file(path: Path) -> list:
    rel_path = path.relative_to(REPO_ROOT)
    text = path.read_text(encoding="utf-8", errors="replace")
    errors = []
    if path.suffix == ".h":
        check_header_guard(rel_path, text, errors)
        check_using_namespace(rel_path, text, errors)
    check_costs_definition(rel_path, text, errors)
    return errors


def main() -> int:
    bad_files = 0
    total_errors = 0
    scanned = 0
    for scan_dir in SCAN_DIRS:
        root = REPO_ROOT / scan_dir
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            scanned += 1
            errors = lint_file(path)
            if errors:
                bad_files += 1
                total_errors += len(errors)
                for error in errors:
                    print(f"lint: {error}", file=sys.stderr)
    if total_errors:
        print(f"lint: {total_errors} issue(s) in {bad_files} file(s)", file=sys.stderr)
    else:
        print(f"lint: {scanned} files clean")
    return min(bad_files, 125)


if __name__ == "__main__":
    sys.exit(main())
