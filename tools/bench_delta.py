#!/usr/bin/env python3
"""Bench regression gate, run in CI after the release bench leg.

Compares a freshly generated bench_table2 JSON report against the
committed baseline (BENCH_table2.json) and fails when the trap-vs-RPC
ratio regresses: the paper's headline microbenchmark is how much a
32-byte cross-task RPC costs relative to a bare kernel trap, and the
zero-copy / bulk-transfer work must not quietly make the common small
RPC slower. A drift of more than --tolerance (default 2%) above the
committed ratio is a failure; getting *faster* is always fine.

The simulator is deterministic, so the measured cycle counts are exact
and the tolerance only has to absorb intentional, committed cost-model
changes (which should update the baseline in the same change).

With --ablations, additionally gates the overload ablation (A5), the
client-side FS-cache ablation (A6) and the mapped-file ablation (A7)
from a bench_ablations JSON report: at every overloaded multiplier the
bounded port must actually shed, must at least halve the unbounded p99
queue wait, and must keep goodput above half of the unbounded run's;
the cached file client must cut RPCs per file-intensive op by at least
2x versus uncached; and a mapped sequential pass must cut server RPCs
per page-sized op by at least 4x versus uncached read() calls. These
mirror the WPOS_CHECKs inside the bench binary, but as an independent
CI gate they still hold if someone weakens the in-binary asserts.

Usage:
  tools/bench_delta.py --fresh bench_table2.json \
      [--baseline BENCH_table2.json] [--tolerance 0.02] \
      [--ablations ablations.json]

Exit status: 0 when within tolerance, 1 on regression or missing keys.
"""

import argparse
import json
import sys


def ratio(report, label):
    """RPC-over-trap cycle ratio from one bench_table2 JSON report."""
    try:
        rpc = report["rpc32.cycles"]["measured"]
        trap = report["trap.cycles"]["measured"]
    except KeyError as missing:
        raise SystemExit(f"{label}: missing key {missing} in bench report")
    if trap <= 0:
        raise SystemExit(f"{label}: non-positive trap.cycles.measured ({trap})")
    return rpc / trap


def check_ablations(path):
    """Overload-ablation (A5) invariants from a bench_ablations report.

    Returns a list of failure strings (empty when every gate holds).
    """
    with open(path) as f:
        report = json.load(f)

    def measured(key):
        try:
            return report[key]["measured"]
        except KeyError:
            raise SystemExit(f"{path}: missing key {key!r} in ablations report")

    failures = []
    for mult in (4, 16):
        prefix = f"overload.x{mult}"
        sheds = measured(f"{prefix}.bounded.sheds")
        bounded_p99 = measured(f"{prefix}.bounded.p99_queue_wait_cycles")
        unbounded_p99 = measured(f"{prefix}.unbounded.p99_queue_wait_cycles")
        bounded_gp = measured(f"{prefix}.bounded.goodput_ops_per_ms")
        unbounded_gp = measured(f"{prefix}.unbounded.goodput_ops_per_ms")
        if sheds <= 0:
            failures.append(f"{prefix}: bounded queue shed nothing at overload")
        # 1% slack: the report rounds to 6 significant figures, and the
        # histogram's power-of-two bucket bounds sit right on the 2x edge.
        if bounded_p99 * 2 > unbounded_p99 * 1.01:
            failures.append(
                f"{prefix}: bound failed to halve the p99 queue wait "
                f"({bounded_p99:.0f} vs {unbounded_p99:.0f} cycles)")
        if bounded_gp < 0.5 * unbounded_gp:
            failures.append(
                f"{prefix}: shedding collapsed goodput "
                f"({bounded_gp:.2f} vs {unbounded_gp:.2f} ops/ms)")
        print(f"{prefix}: sheds {sheds:.0f}, p99 {bounded_p99:.0f} vs "
              f"{unbounded_p99:.0f} cycles, goodput {bounded_gp:.2f} vs "
              f"{unbounded_gp:.2f} ops/ms")

    # A6: the client-side FS cache must at least halve cross-server RPC
    # traffic on the file-intensive loop (and cached must never be worse).
    uncached = measured("fscache.uncached.rpcs_per_op")
    cached = measured("fscache.cached.rpcs_per_op")
    if cached <= 0:
        failures.append("fscache: non-positive cached rpcs_per_op")
    elif uncached < 2 * cached:
        failures.append(
            f"fscache: cache cut RPCs/op only {uncached / cached:.2f}x "
            f"({uncached:.2f} -> {cached:.2f}), below the 2x gate")
    print(f"fscache: {uncached:.2f} RPCs/op uncached vs {cached:.2f} cached "
          f"({uncached / max(cached, 1e-9):.1f}x)")

    # A7: mapped sequential reads must collapse per-read RPCs into per-batch
    # pager fills — at least 4x fewer server RPCs per page-sized op than the
    # uncached read() pass over the same file.
    read_rpcs = measured("mmap.read.rpcs_per_op")
    mapped_rpcs = measured("mmap.mapped.rpcs_per_op")
    if mapped_rpcs <= 0:
        failures.append("mmap: non-positive mapped rpcs_per_op")
    elif read_rpcs < 4 * mapped_rpcs:
        failures.append(
            f"mmap: mapped pass cut RPCs/op only {read_rpcs / mapped_rpcs:.2f}x "
            f"({read_rpcs:.2f} -> {mapped_rpcs:.2f}), below the 4x gate")
    print(f"mmap: {read_rpcs:.2f} RPCs/op read() vs {mapped_rpcs:.2f} mapped "
          f"({read_rpcs / max(mapped_rpcs, 1e-9):.1f}x)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="bench_table2 --json output from this build")
    parser.add_argument("--baseline", default="BENCH_table2.json",
                        help="committed baseline report (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed relative regression (default: %(default)s)")
    parser.add_argument("--ablations", default=None,
                        help="bench_ablations --json output to gate the "
                             "overload ablation (A5) as well")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base = ratio(baseline, args.baseline)
    now = ratio(fresh, args.fresh)
    drift = (now - base) / base
    print(f"trap-vs-RPC ratio: baseline {base:.4f}, fresh {now:.4f}, "
          f"drift {drift:+.2%} (tolerance +{args.tolerance:.0%})")
    if drift > args.tolerance:
        print("FAIL: small-RPC cost regressed past tolerance; if the change "
              "is intentional, regenerate and commit BENCH_table2.json",
              file=sys.stderr)
        return 1
    print("OK: within tolerance")
    if args.ablations:
        failures = check_ablations(args.ablations)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("OK: overload + fs-cache + mmap ablation gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
