#!/usr/bin/env python3
"""Bench regression gate, run in CI after the release bench leg.

Compares a freshly generated bench_table2 JSON report against the
committed baseline (BENCH_table2.json) and fails when the trap-vs-RPC
ratio regresses: the paper's headline microbenchmark is how much a
32-byte cross-task RPC costs relative to a bare kernel trap, and the
zero-copy / bulk-transfer work must not quietly make the common small
RPC slower. A drift of more than --tolerance (default 2%) above the
committed ratio is a failure; getting *faster* is always fine.

The simulator is deterministic, so the measured cycle counts are exact
and the tolerance only has to absorb intentional, committed cost-model
changes (which should update the baseline in the same change).

Usage:
  tools/bench_delta.py --fresh bench_table2.json \
      [--baseline BENCH_table2.json] [--tolerance 0.02]

Exit status: 0 when within tolerance, 1 on regression or missing keys.
"""

import argparse
import json
import sys


def ratio(report, label):
    """RPC-over-trap cycle ratio from one bench_table2 JSON report."""
    try:
        rpc = report["rpc32.cycles"]["measured"]
        trap = report["trap.cycles"]["measured"]
    except KeyError as missing:
        raise SystemExit(f"{label}: missing key {missing} in bench report")
    if trap <= 0:
        raise SystemExit(f"{label}: non-positive trap.cycles.measured ({trap})")
    return rpc / trap


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="bench_table2 --json output from this build")
    parser.add_argument("--baseline", default="BENCH_table2.json",
                        help="committed baseline report (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed relative regression (default: %(default)s)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base = ratio(baseline, args.baseline)
    now = ratio(fresh, args.fresh)
    drift = (now - base) / base
    print(f"trap-vs-RPC ratio: baseline {base:.4f}, fresh {now:.4f}, "
          f"drift {drift:+.2%} (tolerance +{args.tolerance:.0%})")
    if drift > args.tolerance:
        print("FAIL: small-RPC cost regressed past tolerance; if the change "
              "is intentional, regenerate and commit BENCH_table2.json",
              file=sys.stderr)
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
